// StreamBuffer: a FIFO of stream elements between a producer (generator or
// upstream operator) and a consumer (operator or driver).
//
// The buffer distinguishes "temporarily empty" (producer still open — the
// consumer may block or switch to background work, cf. XJoin's reactive
// stage) from "closed" (end of stream).
//
// Push contract: pushing to a closed buffer is a producer bug. TryPush
// reports it (and a full bounded buffer) as a Status; PushBlocking waits for
// space instead; the legacy Push asserts success and must only be used where
// the producer provably outpaces neither closure nor capacity.
//
// An optional capacity turns the buffer into a backpressure point: with
// capacity N, PushBlocking blocks the producer while N elements are queued
// (ThreadedJoinPipeline uses this to bound memory under producer surges).

#ifndef PJOIN_STREAM_STREAM_BUFFER_H_
#define PJOIN_STREAM_STREAM_BUFFER_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "stream/element.h"

namespace pjoin {

class StreamBuffer {
 public:
  /// `capacity` == 0 means unbounded.
  explicit StreamBuffer(size_t capacity = 0) : capacity_(capacity) {}
  PJOIN_DISALLOW_COPY_AND_MOVE(StreamBuffer);

  /// Appends an element if the buffer is open and below capacity.
  /// FailedPrecondition on a closed buffer; ResourceExhausted when a
  /// bounded buffer is full. The element is untouched on failure.
  Status TryPush(StreamElement element);

  /// Appends an element, blocking while a bounded buffer is full. Returns
  /// FailedPrecondition if the buffer is (or becomes) closed.
  Status PushBlocking(StreamElement element);

  /// Legacy convenience: PushBlocking with the status asserted OK. Pushing
  /// to a closed buffer is a checked programming error.
  void Push(StreamElement element);

  /// Appends the whole batch under one mutex acquisition per free-space
  /// window, blocking while a bounded buffer is full (a batched
  /// PushBlocking: producers amortize lock and wakeup traffic). Returns the
  /// number of elements enqueued; short only when the buffer was closed
  /// mid-batch, in which case the remaining elements are dropped with it.
  size_t PushBatch(std::vector<StreamElement> batch);

  /// Removes and returns up to `max_elements` oldest elements in one mutex
  /// acquisition (a batched Pop; never blocks). Returns an empty vector when
  /// nothing is queued.
  std::vector<StreamElement> PopBatch(size_t max_elements);

  /// Marks the producer side finished; Pop drains the remainder then reports
  /// closure via std::nullopt with closed() == true. Unblocks any producer
  /// waiting in PushBlocking.
  void Close();

  /// Removes and returns the oldest element, or nullopt if none available.
  std::optional<StreamElement> Pop();

  /// Peeks at the arrival time of the oldest element without removing it.
  std::optional<TimeMicros> PeekArrival() const;

  bool empty() const;
  size_t size() const;
  /// 0 = unbounded.
  size_t capacity() const { return capacity_; }
  /// True once Close() was called (elements may still be queued).
  bool closed() const;
  /// True when closed and fully drained.
  bool exhausted() const;
  /// Times PushBlocking had to wait for space (backpressure applied).
  int64_t backpressure_waits() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable space_available_;
  std::deque<StreamElement> queue_;
  size_t capacity_;
  bool closed_ = false;
  int64_t backpressure_waits_ = 0;
};

/// Pull-style element source (generators implement this).
class StreamSource {
 public:
  virtual ~StreamSource() = default;
  /// Produces the next element, or nullopt when the stream ends.
  virtual std::optional<StreamElement> Next() = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STREAM_STREAM_BUFFER_H_
