// StreamBuffer: a FIFO of stream elements between a producer (generator or
// upstream operator) and a consumer (operator or driver).
//
// The buffer distinguishes "temporarily empty" (producer still open — the
// consumer may block or switch to background work, cf. XJoin's reactive
// stage) from "closed" (end of stream).
//
// Push contract: pushing to a closed buffer is a producer bug. TryPush
// reports it (and a full bounded buffer) as a Status; PushBlocking waits for
// space instead; the legacy Push asserts success and must only be used where
// the producer provably outpaces neither closure nor capacity.
//
// An optional capacity turns the buffer into a backpressure point: with
// capacity N, PushBlocking blocks the producer while N elements are queued
// (ThreadedJoinPipeline uses this to bound memory under producer surges).

#ifndef PJOIN_STREAM_STREAM_BUFFER_H_
#define PJOIN_STREAM_STREAM_BUFFER_H_

#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"
#include "stream/element.h"

namespace pjoin {

class StreamBuffer {
 public:
  /// `capacity` == 0 means unbounded.
  explicit StreamBuffer(size_t capacity = 0) : capacity_(capacity) {}
  PJOIN_DISALLOW_COPY_AND_MOVE(StreamBuffer);

  /// Appends an element if the buffer is open and below capacity.
  /// FailedPrecondition on a closed buffer; ResourceExhausted when a
  /// bounded buffer is full. The element is untouched on failure.
  [[nodiscard]] Status TryPush(StreamElement element) EXCLUDES(mu_);

  /// Appends an element, blocking while a bounded buffer is full. Returns
  /// FailedPrecondition if the buffer is (or becomes) closed.
  [[nodiscard]] Status PushBlocking(StreamElement element) EXCLUDES(mu_);

  /// Legacy convenience: PushBlocking with the status asserted OK. Pushing
  /// to a closed buffer is a checked programming error.
  void Push(StreamElement element);

  /// Appends the whole batch under one mutex acquisition per free-space
  /// window, blocking while a bounded buffer is full (a batched
  /// PushBlocking: producers amortize lock and wakeup traffic). Returns the
  /// number of elements enqueued; short only when the buffer was closed
  /// mid-batch, in which case the remaining elements are dropped with it.
  size_t PushBatch(std::vector<StreamElement> batch) EXCLUDES(mu_);

  /// Removes and returns up to `max_elements` oldest elements in one mutex
  /// acquisition (a batched Pop; never blocks). Returns an empty vector when
  /// nothing is queued.
  std::vector<StreamElement> PopBatch(size_t max_elements) EXCLUDES(mu_);

  /// Marks the producer side finished; Pop drains the remainder then reports
  /// closure via std::nullopt with closed() == true. Unblocks any producer
  /// waiting in PushBlocking.
  void Close() EXCLUDES(mu_);

  /// Removes and returns the oldest element, or nullopt if none available.
  std::optional<StreamElement> Pop() EXCLUDES(mu_);

  /// Peeks at the arrival time of the oldest element without removing it.
  [[nodiscard]] std::optional<TimeMicros> PeekArrival() const EXCLUDES(mu_);

  [[nodiscard]] bool empty() const EXCLUDES(mu_);
  [[nodiscard]] size_t size() const EXCLUDES(mu_);
  /// 0 = unbounded.
  [[nodiscard]] size_t capacity() const { return capacity_; }
  /// True once Close() was called (elements may still be queued).
  [[nodiscard]] bool closed() const EXCLUDES(mu_);
  /// True when closed and fully drained.
  [[nodiscard]] bool exhausted() const EXCLUDES(mu_);
  /// Times PushBlocking had to wait for space (backpressure applied).
  [[nodiscard]] int64_t backpressure_waits() const EXCLUDES(mu_);

  /// Registers this buffer with the global MetricsRegistry under label
  /// "buf=<name>": a queue-depth gauge ("stream_buffer.depth") plus
  /// pushed/popped/backpressure counters, all updated on every push and pop
  /// (docs/OBSERVABILITY.md). Unbound buffers skip the accounting. Call
  /// before handing the buffer to other threads.
  void BindMetrics(std::string_view name) EXCLUDES(mu_);

 private:
  // Negative-compile probe for the thread-safety CI job; see
  // tests/thread_safety_negative.cc.
  friend class ThreadSafetyNegativeProbe;

  /// True while an element may be appended without exceeding capacity.
  [[nodiscard]] bool HasSpaceLocked() const REQUIRES(mu_) {
    return capacity_ == 0 || queue_.size() < capacity_;
  }
  /// Blocks (accounting one backpressure wait) until the buffer has space
  /// or is closed. Shared by PushBlocking and PushBatch.
  void WaitForSpaceLocked() REQUIRES(mu_);

  /// Publishes the current depth (and push/pop deltas) to the bound metric
  /// handles; no-op when BindMetrics was never called.
  void RecordDepthLocked(int64_t pushed, int64_t popped) REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar space_available_;
  std::deque<StreamElement> queue_ GUARDED_BY(mu_);
  const size_t capacity_;  // immutable after construction: lock-free reads
  bool closed_ GUARDED_BY(mu_) = false;
  int64_t backpressure_waits_ GUARDED_BY(mu_) = 0;
  obs::Gauge depth_metric_ GUARDED_BY(mu_);
  obs::Counter pushed_metric_ GUARDED_BY(mu_);
  obs::Counter popped_metric_ GUARDED_BY(mu_);
  obs::Counter backpressure_metric_ GUARDED_BY(mu_);
};

/// Pull-style element source (generators implement this).
class StreamSource {
 public:
  virtual ~StreamSource() = default;
  /// Produces the next element, or nullopt when the stream ends.
  virtual std::optional<StreamElement> Next() = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STREAM_STREAM_BUFFER_H_
