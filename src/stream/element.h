// StreamElement: one item of a punctuated stream — a tuple, a punctuation,
// or the end-of-stream marker — with its arrival timestamp.

#ifndef PJOIN_STREAM_ELEMENT_H_
#define PJOIN_STREAM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"
#include "punct/punctuation.h"
#include "tuple/tuple.h"

namespace pjoin {

enum class ElementKind { kTuple = 0, kPunctuation, kEndOfStream };

class StreamElement {
 public:
  /// A data tuple arriving at time `arrival`.
  static StreamElement MakeTuple(Tuple t, TimeMicros arrival, int64_t seq = 0);
  /// A punctuation arriving at time `arrival`.
  static StreamElement MakePunctuation(Punctuation p, TimeMicros arrival,
                                       int64_t seq = 0);
  /// End-of-stream marker.
  static StreamElement MakeEndOfStream(TimeMicros arrival, int64_t seq = 0);

  StreamElement() : kind_(ElementKind::kEndOfStream) {}

  ElementKind kind() const { return kind_; }
  bool is_tuple() const { return kind_ == ElementKind::kTuple; }
  bool is_punctuation() const { return kind_ == ElementKind::kPunctuation; }
  bool is_end_of_stream() const { return kind_ == ElementKind::kEndOfStream; }

  const Tuple& tuple() const;
  const Punctuation& punctuation() const;

  /// Virtual arrival time assigned by the generator.
  TimeMicros arrival() const { return arrival_; }
  /// Per-stream sequence number (tuples and punctuations share one counter).
  int64_t seq() const { return seq_; }

  std::string ToString() const;

 private:
  ElementKind kind_;
  std::variant<std::monostate, Tuple, Punctuation> payload_;
  TimeMicros arrival_ = 0;
  int64_t seq_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STREAM_ELEMENT_H_
