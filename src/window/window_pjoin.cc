#include "window/window_pjoin.h"

#include "join/punct_index.h"

namespace pjoin {

WindowPJoin::WindowPJoin(SchemaPtr left_schema, SchemaPtr right_schema,
                         WindowJoinOptions options)
    : options_(options) {
  PJOIN_DCHECK(options_.num_partitions > 0);
  PJOIN_DCHECK(options_.window_micros > 0);
  output_schema_ = Schema::Concat(*left_schema, *right_schema);
  sides_[0].schema = std::move(left_schema);
  sides_[0].key_index = options_.left_key;
  sides_[1].schema = std::move(right_schema);
  sides_[1].key_index = options_.right_key;
  for (SideState& s : sides_) {
    PJOIN_DCHECK(s.key_index < s.schema->num_fields());
    s.buckets.resize(static_cast<size_t>(options_.num_partitions));
    s.puncts = std::make_unique<PunctuationSet>(s.key_index);
  }
}

int WindowPJoin::PartitionOf(const SideState& s, const Value& key) const {
  (void)s;
  return static_cast<int>(key.Hash() %
                          static_cast<uint64_t>(options_.num_partitions));
}

int64_t WindowPJoin::state_tuples(int side) const {
  PJOIN_DCHECK(side == 0 || side == 1);
  return state_tuples_[side];
}

Status WindowPJoin::OnElement(int side, const StreamElement& element) {
  PJOIN_DCHECK(side == 0 || side == 1);
  PJOIN_DCHECK(!finished_);
  switch (element.kind()) {
    case ElementKind::kTuple:
      return OnTuple(side, element.tuple(), element.arrival());
    case ElementKind::kPunctuation:
      return OnPunctuation(side, element.punctuation(), element.arrival());
    case ElementKind::kEndOfStream:
      eos_[side] = true;
      if (eos_[0] && eos_[1]) {
        finished_ = true;
        return Finish();
      }
      return Status::OK();
  }
  return Status::Internal("unknown element kind");
}

void WindowPJoin::ExpireSide(int side, TimeMicros now) {
  const TimeMicros cutoff = now - options_.window_micros;
  SideState& s = sides_[side];
  for (auto& bucket : s.buckets) {
    // Buckets are in arrival order: stop at the first valid tuple.
    while (!bucket.empty() && bucket.front().arrival < cutoff) {
      bucket.pop_front();
      --state_tuples_[side];
      counters_.Add("window_expired");
    }
  }
}

Status WindowPJoin::OnTuple(int side, const Tuple& tuple,
                            TimeMicros arrival) {
  SideState& own = sides_[side];
  SideState& opp = sides_[1 - side];
  // Tuple invalidation by window, combined with the state probing (§6).
  ExpireSide(1 - side, arrival);

  const Value& key = tuple.field(own.key_index);
  const int p = PartitionOf(own, key);
  for (const TimedEntry& e : opp.buckets[static_cast<size_t>(p)]) {
    counters_.Add("probe_comparisons");
    if (e.tuple.field(opp.key_index) == key) {
      if (side == 0) {
        EmitResult(tuple, e.tuple);
      } else {
        EmitResult(e.tuple, tuple);
      }
    }
  }

  // On-the-fly drop: covered by opposite punctuations means no future
  // opposite tuple can match; the probe above already handled the past.
  if (options_.exploit_punctuations && opp.puncts->SetMatchKey(key)) {
    counters_.Add("otf_drops");
    return Status::OK();
  }
  own.buckets[static_cast<size_t>(p)].push_back(TimedEntry{tuple, arrival});
  ++state_tuples_[side];
  return Status::OK();
}

void WindowPJoin::PurgeByPunctuations(int side) {
  SideState& own = sides_[side];
  const PunctuationSet& opp_ps = *sides_[1 - side].puncts;
  for (auto& bucket : own.buckets) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      counters_.Add("purge_scanned");
      if (opp_ps.SetMatchKey(it->tuple.field(own.key_index))) {
        it = bucket.erase(it);
        --state_tuples_[side];
        counters_.Add("punct_purged");
      } else {
        ++it;
      }
    }
  }
}

Status WindowPJoin::OnPunctuation(int side, const Punctuation& punct,
                                  TimeMicros arrival) {
  if (!options_.exploit_punctuations) return Status::OK();
  SideState& own = sides_[side];
  PJOIN_RETURN_NOT_OK(own.puncts->Add(punct, arrival).status());
  // This operator scans rather than consumes the set's work queues; drain
  // them so they do not accumulate.
  own.puncts->TakeUnappliedForPurge();
  own.puncts->TakeUnindexed();
  // The punctuation purges the *opposite* state immediately (eager purge)…
  PurgeByPunctuations(1 - side);
  // …and may itself become propagable right away (early propagation): with
  // windows there is no disk portion, so the only gate is the own state.
  return PropagateSide(side);
}

Status WindowPJoin::PropagateSide(int side) {
  SideState& own = sides_[side];
  // Count matches per held punctuation by scanning the own state once.
  own.puncts->ForEach([](PunctEntry& e) {
    e.match_count = 0;
    e.indexed = true;
  });
  for (auto& bucket : own.buckets) {
    for (const TimedEntry& t : bucket) {
      PunctEntry* match = own.puncts->FindFirstMatch(t.tuple);
      if (match != nullptr) ++match->match_count;
    }
  }
  std::vector<Punctuation> released = Propagator::Propagate(own.puncts.get());
  for (const Punctuation& p : released) {
    ++puncts_emitted_;
    counters_.Add("puncts_propagated");
    if (on_punct_) on_punct_(MakeOutputPunct(side, p));
  }
  return Status::OK();
}

Status WindowPJoin::Finish() {
  PJOIN_RETURN_NOT_OK(PropagateSide(0));
  return PropagateSide(1);
}

void WindowPJoin::EmitResult(const Tuple& left, const Tuple& right) {
  ++results_emitted_;
  if (on_result_) on_result_(Tuple::Concat(left, right, output_schema_));
}

Punctuation WindowPJoin::MakeOutputPunct(int side,
                                         const Punctuation& punct) const {
  const size_t left_width = sides_[0].schema->num_fields();
  const size_t right_width = sides_[1].schema->num_fields();
  std::vector<Pattern> patterns(left_width + right_width,
                                Pattern::Wildcard());
  if (side == 0) {
    for (size_t i = 0; i < left_width; ++i) patterns[i] = punct.pattern(i);
    patterns[left_width + sides_[1].key_index] =
        punct.pattern(sides_[0].key_index);
  } else {
    for (size_t i = 0; i < right_width; ++i) {
      patterns[left_width + i] = punct.pattern(i);
    }
    patterns[sides_[0].key_index] = punct.pattern(sides_[1].key_index);
  }
  return Punctuation(std::move(patterns));
}

}  // namespace pjoin
