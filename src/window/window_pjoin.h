// WindowPJoin: the sliding-window extension sketched in paper §6.
//
// Semantics: a pair (a, b) is a result iff their keys are equal and their
// arrival timestamps lie within `window_micros` of each other. Tuples are
// kept in arrival order per bucket so that window invalidation stops at the
// first still-valid tuple (the paper's suggestion). Punctuations purge
// tuples *earlier* than the window would — and enable early punctuation
// propagation: a punctuation is released as soon as no own-side tuple
// matching it remains, instead of waiting a full window length.
//
// The state is memory-only: as §6 notes, windows (and punctuations) already
// bound the state, so the overflow machinery of the unwindowed PJoin is not
// needed here.

#ifndef PJOIN_WINDOW_WINDOW_PJOIN_H_
#define PJOIN_WINDOW_WINDOW_PJOIN_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "join/join_base.h"
#include "punct/punctuation_set.h"

namespace pjoin {

struct WindowJoinOptions {
  size_t left_key = 0;
  size_t right_key = 0;
  int num_partitions = 16;
  /// Window length: tuples join when their arrival times differ by at most
  /// this much.
  TimeMicros window_micros = 1000 * kMicrosPerMilli;
  /// Exploit punctuations for purge (before expiry) and early propagation.
  bool exploit_punctuations = true;
};

class WindowPJoin {
 public:
  using ResultCallback = std::function<void(const Tuple&)>;
  using PunctCallback = std::function<void(const Punctuation&)>;

  WindowPJoin(SchemaPtr left_schema, SchemaPtr right_schema,
              WindowJoinOptions options = {});
  PJOIN_DISALLOW_COPY_AND_MOVE(WindowPJoin);

  const SchemaPtr& output_schema() const { return output_schema_; }
  void set_result_callback(ResultCallback cb) { on_result_ = std::move(cb); }
  void set_punct_callback(PunctCallback cb) { on_punct_ = std::move(cb); }

  Status OnElement(int side, const StreamElement& element);

  // ---- Introspection ----
  int64_t results_emitted() const { return results_emitted_; }
  int64_t puncts_emitted() const { return puncts_emitted_; }
  int64_t state_tuples() const { return state_tuples_[0] + state_tuples_[1]; }
  int64_t state_tuples(int side) const;
  const CounterSet& counters() const { return counters_; }

 private:
  struct TimedEntry {
    Tuple tuple;
    TimeMicros arrival;
  };

  struct SideState {
    SchemaPtr schema;
    size_t key_index;
    // Per partition, in arrival order.
    std::vector<std::deque<TimedEntry>> buckets;
    std::unique_ptr<PunctuationSet> puncts;
  };

  Status OnTuple(int side, const Tuple& tuple, TimeMicros arrival);
  Status OnPunctuation(int side, const Punctuation& punct,
                       TimeMicros arrival);
  Status Finish();

  /// Drops opposite-side tuples older than `now - window` (they can no
  /// longer join anything arriving at or after `now`).
  void ExpireSide(int side, TimeMicros now);

  /// Removes side-`side` tuples covered by the opposite punctuation set.
  void PurgeByPunctuations(int side);

  /// Releases every held punctuation of `side` with no matching own-side
  /// tuple left (early propagation).
  Status PropagateSide(int side);

  void EmitResult(const Tuple& left, const Tuple& right);
  Punctuation MakeOutputPunct(int side, const Punctuation& punct) const;

  int PartitionOf(const SideState& s, const Value& key) const;

  WindowJoinOptions options_;
  SchemaPtr output_schema_;
  SideState sides_[2];
  ResultCallback on_result_;
  PunctCallback on_punct_;
  CounterSet counters_;
  int64_t state_tuples_[2] = {0, 0};
  int64_t results_emitted_ = 0;
  int64_t puncts_emitted_ = 0;
  bool eos_[2] = {false, false};
  bool finished_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_WINDOW_WINDOW_PJOIN_H_
