#include "plan/query_plan.h"

#include <sstream>

#include "join/pjoin.h"
#include "join/shj.h"
#include "join/xjoin.h"
#include "ops/filter.h"
#include "ops/project.h"

namespace pjoin {

Status QueryPlan::Run() {
  Operator* head =
      operators_.empty() ? sink_ : operators_.front().get();
  JoinPipeline pipeline(join_.get(), head, pipeline_options_);
  return pipeline.Run(inputs_[0], inputs_[1]);
}

std::string QueryPlan::Explain() const {
  std::ostringstream os;
  for (const std::string& line : description_) os << line << "\n";
  return os.str();
}

QueryPlanBuilder::QueryPlanBuilder()
    : plan_(std::unique_ptr<QueryPlan>(new QueryPlan())) {}

QueryPlanBuilder::~QueryPlanBuilder() = default;

QueryPlanBuilder& QueryPlanBuilder::Source(
    SchemaPtr schema, std::vector<StreamElement> elements) {
  if (!deferred_error_.ok()) return *this;
  if (sources_ >= 2) {
    deferred_error_ = Status::InvalidArgument("a plan has two sources");
    return *this;
  }
  plan_->description_.push_back("source[" + std::to_string(sources_) +
                                "] " + schema->ToString());
  plan_->schemas_[sources_] = std::move(schema);
  plan_->inputs_[sources_] = std::move(elements);
  ++sources_;
  return *this;
}

template <typename JoinType>
QueryPlanBuilder& QueryPlanBuilder::AddJoin(JoinOptions options,
                                            const std::string& name) {
  if (!deferred_error_.ok()) return *this;
  if (sources_ != 2) {
    deferred_error_ =
        Status::FailedPrecondition("add both sources before the join");
    return *this;
  }
  if (plan_->join_ != nullptr) {
    deferred_error_ = Status::FailedPrecondition("plan already has a join");
    return *this;
  }
  plan_->join_ = std::make_unique<JoinType>(plan_->schemas_[0],
                                            plan_->schemas_[1], options);
  current_schema_ = plan_->join_->output_schema();
  plan_->description_.push_back(name + " -> " + current_schema_->ToString());
  return *this;
}

QueryPlanBuilder& QueryPlanBuilder::PJoin(JoinOptions options) {
  return AddJoin<::pjoin::PJoin>(std::move(options), "pjoin");
}

QueryPlanBuilder& QueryPlanBuilder::XJoin(JoinOptions options) {
  return AddJoin<::pjoin::XJoin>(std::move(options), "xjoin");
}

QueryPlanBuilder& QueryPlanBuilder::SymmetricHashJoin(JoinOptions options) {
  return AddJoin<::pjoin::SymmetricHashJoin>(std::move(options), "shj");
}

QueryPlanBuilder& QueryPlanBuilder::Filter(
    std::function<bool(const Tuple&)> predicate, const std::string& label) {
  if (!deferred_error_.ok()) return *this;
  if (current_schema_ == nullptr) {
    deferred_error_ = Status::FailedPrecondition("add the join first");
    return *this;
  }
  plan_->operators_.push_back(
      std::make_unique<::pjoin::Filter>(std::move(predicate)));
  plan_->description_.push_back(label);
  return *this;
}

QueryPlanBuilder& QueryPlanBuilder::Project(std::vector<size_t> columns) {
  if (!deferred_error_.ok()) return *this;
  if (current_schema_ == nullptr) {
    deferred_error_ = Status::FailedPrecondition("add the join first");
    return *this;
  }
  for (size_t c : columns) {
    if (c >= current_schema_->num_fields()) {
      deferred_error_ = Status::InvalidArgument(
          "project column " + std::to_string(c) + " out of range for " +
          current_schema_->ToString());
      return *this;
    }
  }
  auto op = std::make_unique<::pjoin::Project>(current_schema_,
                                               std::move(columns));
  current_schema_ = op->output_schema();
  plan_->description_.push_back("project -> " + current_schema_->ToString());
  plan_->operators_.push_back(std::move(op));
  return *this;
}

QueryPlanBuilder& QueryPlanBuilder::GroupBy(
    size_t group_field, std::vector<AggSpec> aggs,
    std::vector<size_t> group_aliases) {
  if (!deferred_error_.ok()) return *this;
  if (current_schema_ == nullptr) {
    deferred_error_ = Status::FailedPrecondition("add the join first");
    return *this;
  }
  if (group_field >= current_schema_->num_fields()) {
    deferred_error_ = Status::InvalidArgument("group field out of range");
    return *this;
  }
  for (const AggSpec& agg : aggs) {
    if (agg.kind != AggKind::kCount &&
        agg.field >= current_schema_->num_fields()) {
      deferred_error_ =
          Status::InvalidArgument("aggregate field out of range");
      return *this;
    }
  }
  auto op = std::make_unique<::pjoin::GroupBy>(
      current_schema_, group_field, std::move(aggs),
      std::move(group_aliases));
  current_schema_ = op->output_schema();
  plan_->description_.push_back("group-by -> " + current_schema_->ToString());
  plan_->operators_.push_back(std::move(op));
  return *this;
}

QueryPlanBuilder& QueryPlanBuilder::CollectInto(Operator* sink) {
  if (!deferred_error_.ok()) return *this;
  plan_->sink_ = sink;
  plan_->description_.push_back("sink");
  return *this;
}

QueryPlanBuilder& QueryPlanBuilder::StallGap(TimeMicros gap) {
  plan_->pipeline_options_.stall_gap_micros = gap;
  return *this;
}

SchemaPtr QueryPlanBuilder::CurrentSchema() const { return current_schema_; }

Result<std::unique_ptr<QueryPlan>> QueryPlanBuilder::Build() {
  PJOIN_RETURN_NOT_OK(deferred_error_);
  if (sources_ != 2) {
    return Status::FailedPrecondition("plan needs two sources");
  }
  if (plan_->join_ == nullptr) {
    return Status::FailedPrecondition("plan needs a join");
  }
  // Wire the operator chain.
  for (size_t i = 0; i + 1 < plan_->operators_.size(); ++i) {
    plan_->operators_[i]->set_downstream(plan_->operators_[i + 1].get());
  }
  if (!plan_->operators_.empty() && plan_->sink_ != nullptr) {
    plan_->operators_.back()->set_downstream(plan_->sink_);
  }
  return std::move(plan_);
}

}  // namespace pjoin
