// QueryPlan: a small declarative layer for assembling and running the
// continuous query shapes of the paper (Fig 1(c)): two punctuated sources,
// a binary join, and a chain of unary operators ending in a sink.
//
//   QueryPlanBuilder builder;
//   builder.Source(open_schema, open_elements)
//          .Source(bid_schema, bid_elements)
//          .PJoin(options)
//          .GroupBy(0, {{AggKind::kSum, 5, "sum"}}, {3})
//          .CollectInto(&sink);
//   PJOIN_CHECK(builder.Build().value()->Run().ok());
//
// The plan owns its operators; the sink is caller-owned.

#ifndef PJOIN_PLAN_QUERY_PLAN_H_
#define PJOIN_PLAN_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "join/join_base.h"
#include "ops/groupby.h"
#include "ops/pipeline.h"
#include "ops/sink.h"

namespace pjoin {

/// A fully assembled, runnable query plan.
class QueryPlan {
 public:
  /// Runs the plan to completion (all sources drained, join finished, all
  /// downstream operators flushed).
  Status Run();

  /// The join at the root of the pipeline (for metrics inspection).
  JoinOperator& join() { return *join_; }
  const JoinOperator& join() const { return *join_; }

  /// Multi-line description of the plan shape.
  std::string Explain() const;

 private:
  friend class QueryPlanBuilder;
  QueryPlan() = default;

  SchemaPtr schemas_[2];
  std::vector<StreamElement> inputs_[2];
  std::unique_ptr<JoinOperator> join_;
  std::vector<std::unique_ptr<Operator>> operators_;
  Operator* sink_ = nullptr;  // not owned
  PipelineOptions pipeline_options_;
  std::vector<std::string> description_;
};

/// Step-by-step construction; calls must follow the order
/// Source, Source, <join>, [unary ops...], [CollectInto].
class QueryPlanBuilder {
 public:
  QueryPlanBuilder();
  ~QueryPlanBuilder();
  PJOIN_DISALLOW_COPY_AND_MOVE(QueryPlanBuilder);

  /// Adds an input stream (first call = side 0, second = side 1).
  QueryPlanBuilder& Source(SchemaPtr schema,
                           std::vector<StreamElement> elements);

  /// Roots the plan with the given join algorithm (exactly one of these).
  QueryPlanBuilder& PJoin(JoinOptions options = {});
  QueryPlanBuilder& XJoin(JoinOptions options = {});
  QueryPlanBuilder& SymmetricHashJoin(JoinOptions options = {});

  /// Appends unary operators to the join output, in order.
  QueryPlanBuilder& Filter(std::function<bool(const Tuple&)> predicate,
                           const std::string& label = "filter");
  QueryPlanBuilder& Project(std::vector<size_t> columns);
  QueryPlanBuilder& GroupBy(size_t group_field, std::vector<AggSpec> aggs,
                            std::vector<size_t> group_aliases = {});

  /// Routes the final output into a caller-owned sink.
  QueryPlanBuilder& CollectInto(Operator* sink);

  /// Stall-detection gap forwarded to the pipeline driver.
  QueryPlanBuilder& StallGap(TimeMicros gap);

  /// Validates and produces the plan. Errors: missing sources or join,
  /// operator schema mismatches.
  Result<std::unique_ptr<QueryPlan>> Build();

  /// Output schema at the current tail of the plan (for wiring checks).
  SchemaPtr CurrentSchema() const;

 private:
  template <typename JoinType>
  QueryPlanBuilder& AddJoin(JoinOptions options, const std::string& name);

  std::unique_ptr<QueryPlan> plan_;
  SchemaPtr current_schema_;
  int sources_ = 0;
  Status deferred_error_;
};

}  // namespace pjoin

#endif  // PJOIN_PLAN_QUERY_PLAN_H_
