// RecoveringSpillStore: a SpillStore decorator that makes any primary store
// survive transient I/O errors and degrade gracefully on permanent ones.
//
// The degradation ladder (docs/ROBUSTNESS.md):
//   1. retry    — every failed operation is retried up to max_retries times
//                 with exponential backoff;
//   2. resume   — a failed AppendBatch is resumed from the partition's
//                 durable record count, so short writes never duplicate or
//                 lose records across retries;
//   3. fallback — when retries are exhausted the store migrates every
//                 readable partition into a fallback store (an in-memory
//                 SimulatedDisk by default) and continues there, emitting a
//                 DegradedModeEvent.
// Only when data is genuinely unreadable (permanent read failure of
// unmigrated pages) does an operation return an error: correctness is never
// silently traded for availability.

#ifndef PJOIN_STORAGE_RECOVERING_SPILL_STORE_H_
#define PJOIN_STORAGE_RECOVERING_SPILL_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/event.h"
#include "storage/spill_store.h"

namespace pjoin {

struct RecoveryOptions {
  /// Retries per failed operation before declaring the failure permanent.
  int max_retries = 3;
  /// Backoff before retry k (0-based) is initial * multiplier^k.
  int64_t backoff_initial_micros = 100;
  double backoff_multiplier = 2.0;
  /// Sleep for real during backoff. Off by default: deterministic runs only
  /// account the backoff in RecoveryStats::backoff_micros.
  bool sleep_on_backoff = false;
  /// Builds the degraded-mode store. Defaults to SimulatedDisk.
  std::function<std::unique_ptr<SpillStore>()> fallback_factory;
};

struct RecoveryStats {
  int64_t io_errors = 0;          // failed operations observed (pre-retry)
  int64_t retries = 0;            // retry attempts issued
  int64_t recovered_ops = 0;      // operations that succeeded after >=1 retry
  int64_t backoff_micros = 0;     // total exponential backoff accounted
  int64_t fallbacks = 0;          // primary -> fallback switches (0 or 1)
  int64_t records_migrated = 0;   // records copied into the fallback store
  int64_t records_lost = 0;       // records unreadable during migration
};

class RecoveringSpillStore : public SpillStore {
 public:
  /// Receives IoErrorEvent / DegradedModeEvent as they happen (optional).
  using EventSink = std::function<void(const Event&)>;

  explicit RecoveringSpillStore(std::unique_ptr<SpillStore> primary,
                                RecoveryOptions options = {},
                                EventSink sink = nullptr);

  Status AppendBatch(int partition,
                     const std::vector<std::string>& records) override
      EXCLUDES(mu_);
  Result<std::vector<std::string>> ReadPartition(int partition) override
      EXCLUDES(mu_);
  Status ClearPartition(int partition) override EXCLUDES(mu_);
  [[nodiscard]] int64_t PartitionRecordCount(int partition) const override
      EXCLUDES(mu_);
  [[nodiscard]] int64_t TotalRecordCount() const override EXCLUDES(mu_);
  [[nodiscard]] std::vector<int> NonEmptyPartitions() const override
      EXCLUDES(mu_);
  const IoStats& io_stats() const override EXCLUDES(mu_);

  /// True once the store runs on the fallback.
  [[nodiscard]] bool degraded() const EXCLUDES(mu_);
  /// Consistent snapshot of the recovery counters (by value: the stats are
  /// mutated on whichever pipeline thread drives the store).
  [[nodiscard]] RecoveryStats recovery_stats() const EXCLUDES(mu_);

 private:
  SpillStore* ActiveLocked() REQUIRES(mu_) {
    return degraded_ ? fallback_.get() : primary_.get();
  }
  const SpillStore* ActiveLocked() const REQUIRES(mu_) {
    return degraded_ ? fallback_.get() : primary_.get();
  }

  /// Accounts (and optionally sleeps) the backoff before retry `attempt`.
  void BackoffLocked(int attempt) REQUIRES(mu_);
  void EmitIoErrorLocked(const std::string& detail) REQUIRES(mu_);

  /// Switches to the fallback store, migrating every readable primary
  /// partition. Returns an error only if some partition is unreadable.
  Status FallBackLocked(const std::string& reason) REQUIRES(mu_);

  RecoveryOptions options_;  // immutable after construction
  EventSink sink_;           // immutable after construction

  mutable Mutex mu_;
  std::unique_ptr<SpillStore> primary_ GUARDED_BY(mu_);
  std::unique_ptr<SpillStore> fallback_ GUARDED_BY(mu_);
  bool degraded_ GUARDED_BY(mu_) = false;
  RecoveryStats recovery_stats_ GUARDED_BY(mu_);
  /// io_stats() aggregate: retired-primary totals + active-store totals.
  IoStats retired_stats_ GUARDED_BY(mu_);
  mutable IoStats stats_ GUARDED_BY(mu_);
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_RECOVERING_SPILL_STORE_H_
