#include "storage/recovering_spill_store.h"

#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "storage/simulated_disk.h"

namespace pjoin {

namespace {

void AddStats(IoStats* into, const IoStats& delta) {
  into->pages_written += delta.pages_written;
  into->pages_read += delta.pages_read;
  into->records_written += delta.records_written;
  into->records_read += delta.records_read;
  into->simulated_latency_micros += delta.simulated_latency_micros;
}

}  // namespace

RecoveringSpillStore::RecoveringSpillStore(std::unique_ptr<SpillStore> primary,
                                           RecoveryOptions options,
                                           EventSink sink)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      primary_(std::move(primary)) {
  PJOIN_DCHECK(primary_ != nullptr);
  if (!options_.fallback_factory) {
    options_.fallback_factory = [] { return std::make_unique<SimulatedDisk>(); };
  }
}

void RecoveringSpillStore::BackoffLocked(int attempt) {
  const double factor = std::pow(options_.backoff_multiplier, attempt);
  const auto delay = static_cast<int64_t>(
      static_cast<double>(options_.backoff_initial_micros) * factor);
  recovery_stats_.backoff_micros += delay;
  if (options_.sleep_on_backoff) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

void RecoveringSpillStore::EmitIoErrorLocked(const std::string& detail) {
  ++recovery_stats_.io_errors;
  if (sink_) sink_(Event{EventType::kIoError, 0, -1, detail});
}

Status RecoveringSpillStore::FallBackLocked(const std::string& reason) {
  PJOIN_DCHECK(!degraded_);
  PJOIN_LOG(kWarn) << "spill store degrading to fallback: " << reason;
  fallback_ = options_.fallback_factory();
  ++recovery_stats_.fallbacks;

  // Migrate every readable partition. Reads get the same retry budget as
  // regular operations; records behind a permanent read failure are lost
  // and reported — never silently dropped.
  std::vector<int> unreadable;
  for (int p : primary_->NonEmptyPartitions()) {
    Result<std::vector<std::string>> records = primary_->ReadPartition(p);
    for (int attempt = 0; attempt < options_.max_retries && !records.ok();
         ++attempt) {
      EmitIoErrorLocked("migration read of partition " + std::to_string(p) +
                        ": " + records.status().message());
      ++recovery_stats_.retries;
      BackoffLocked(attempt);
      records = primary_->ReadPartition(p);
    }
    if (!records.ok()) {
      recovery_stats_.records_lost += primary_->PartitionRecordCount(p);
      unreadable.push_back(p);
      continue;
    }
    PJOIN_RETURN_NOT_OK(fallback_->AppendBatch(p, *records));
    recovery_stats_.records_migrated +=
        static_cast<int64_t>(records->size());
  }

  AddStats(&retired_stats_, primary_->io_stats());
  degraded_ = true;
  if (sink_) {
    sink_(Event{EventType::kDegradedMode, 0, -1,
                reason + "; migrated " +
                    std::to_string(recovery_stats_.records_migrated) +
                    " records"});
  }
  if (!unreadable.empty()) {
    return Status::IOError(
        "degraded with data loss: " +
        std::to_string(recovery_stats_.records_lost) +
        " records unreadable during migration (first partition " +
        std::to_string(unreadable.front()) + ")");
  }
  return Status::OK();
}

Status RecoveringSpillStore::AppendBatch(
    int partition, const std::vector<std::string>& records) {
  MutexLock lock(mu_);
  if (records.empty()) return ActiveLocked()->AppendBatch(partition, records);
  // Resume-from-watermark: the partition's durable record count tells how
  // much of the batch survived a failed or short write, so retries append
  // exactly the missing suffix — no duplicates, no loss.
  const int64_t durable_before = ActiveLocked()->PartitionRecordCount(partition);
  size_t done = 0;
  Status status;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++recovery_stats_.retries;
      BackoffLocked(attempt - 1);
      done = static_cast<size_t>(
          ActiveLocked()->PartitionRecordCount(partition) - durable_before);
      PJOIN_DCHECK(done <= records.size());
    }
    const std::vector<std::string> suffix(
        records.begin() + static_cast<ptrdiff_t>(done), records.end());
    status = suffix.empty() ? Status::OK()
                            : ActiveLocked()->AppendBatch(partition, suffix);
    if (status.ok()) {
      if (attempt > 0) ++recovery_stats_.recovered_ops;
      return Status::OK();
    }
    EmitIoErrorLocked("append to partition " + std::to_string(partition) +
                      ": " + status.message());
  }
  if (degraded_) {
    return Status::IOError("fallback store failed: " + status.message());
  }
  // Retries exhausted on the primary: degrade. The durable prefix of this
  // batch migrates with its partition; only the unwritten suffix remains.
  done = static_cast<size_t>(ActiveLocked()->PartitionRecordCount(partition) -
                             durable_before);
  PJOIN_RETURN_NOT_OK(
      FallBackLocked("permanent write failure: " + status.message()));
  const std::vector<std::string> suffix(
      records.begin() + static_cast<ptrdiff_t>(done), records.end());
  return fallback_->AppendBatch(partition, suffix);
}

Result<std::vector<std::string>> RecoveringSpillStore::ReadPartition(
    int partition) {
  MutexLock lock(mu_);
  Result<std::vector<std::string>> result =
      ActiveLocked()->ReadPartition(partition);
  for (int attempt = 0; attempt < options_.max_retries && !result.ok();
       ++attempt) {
    EmitIoErrorLocked("read of partition " + std::to_string(partition) + ": " +
                      result.status().message());
    ++recovery_stats_.retries;
    BackoffLocked(attempt);
    result = ActiveLocked()->ReadPartition(partition);
    if (result.ok()) ++recovery_stats_.recovered_ops;
  }
  if (result.ok()) return result;
  EmitIoErrorLocked("read of partition " + std::to_string(partition) + ": " +
                    result.status().message());
  if (degraded_) return result;
  // Permanent read failure on the primary: degrade. If this partition's
  // pages are truly unreadable the migration reports the loss.
  PJOIN_RETURN_NOT_OK(FallBackLocked("permanent read failure: " +
                                     result.status().message()));
  return fallback_->ReadPartition(partition);
}

Status RecoveringSpillStore::ClearPartition(int partition) {
  MutexLock lock(mu_);
  Status status = ActiveLocked()->ClearPartition(partition);
  for (int attempt = 0; attempt < options_.max_retries && !status.ok();
       ++attempt) {
    EmitIoErrorLocked("clear of partition " + std::to_string(partition) + ": " +
                      status.message());
    ++recovery_stats_.retries;
    BackoffLocked(attempt);
    status = ActiveLocked()->ClearPartition(partition);
    if (status.ok()) ++recovery_stats_.recovered_ops;
  }
  return status;
}

int64_t RecoveringSpillStore::PartitionRecordCount(int partition) const {
  MutexLock lock(mu_);
  return ActiveLocked()->PartitionRecordCount(partition);
}

int64_t RecoveringSpillStore::TotalRecordCount() const {
  MutexLock lock(mu_);
  return ActiveLocked()->TotalRecordCount();
}

std::vector<int> RecoveringSpillStore::NonEmptyPartitions() const {
  MutexLock lock(mu_);
  return ActiveLocked()->NonEmptyPartitions();
}

const IoStats& RecoveringSpillStore::io_stats() const {
  MutexLock lock(mu_);
  stats_ = retired_stats_;
  AddStats(&stats_, ActiveLocked()->io_stats());
  return stats_;
}

bool RecoveringSpillStore::degraded() const {
  MutexLock lock(mu_);
  return degraded_;
}

RecoveryStats RecoveringSpillStore::recovery_stats() const {
  MutexLock lock(mu_);
  return recovery_stats_;
}

}  // namespace pjoin
