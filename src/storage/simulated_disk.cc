#include "storage/simulated_disk.h"

#include <sstream>

#include "common/clock.h"
#include "common/macros.h"
#include "obs/trace.h"

namespace pjoin {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "pages_written=" << pages_written << " pages_read=" << pages_read
     << " records_written=" << records_written
     << " records_read=" << records_read
     << " simulated_latency_micros=" << simulated_latency_micros;
  return os.str();
}

SimulatedDisk::SimulatedDisk(SimulatedDiskOptions options)
    : options_(options),
      pages_written_metric_(obs::MetricsRegistry::Global().GetCounter(
          "spill.pages_written", "store=sim")),
      pages_read_metric_(obs::MetricsRegistry::Global().GetCounter(
          "spill.pages_read", "store=sim")),
      append_latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "pjoin_spill_page_io_seconds", "store=sim,op=append",
          /*unit_scale=*/1e-6)),
      read_latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "pjoin_spill_page_io_seconds", "store=sim,op=read",
          /*unit_scale=*/1e-6)) {}

Status SimulatedDisk::AppendBatch(int partition,
                                  const std::vector<std::string>& records) {
  if (records.empty()) return Status::OK();
  TRACE_SPAN("spill", "append_batch");
  const Stopwatch watch;
  Partition& part = partitions_[partition];
  PageWriter writer(options_.page_size);
  for (const auto& record : records) {
    if (record.size() + 8 > options_.page_size) {
      return Status::InvalidArgument("record larger than page size");
    }
    if (!writer.Append(record)) {
      part.pages.push_back(writer.Finish());
      ++stats_.pages_written;
      pages_written_metric_.Add();
      stats_.simulated_latency_micros += options_.page_latency_micros;
      const bool ok = writer.Append(record);
      PJOIN_DCHECK(ok);
    }
    ++part.record_count;
    ++stats_.records_written;
  }
  if (!writer.empty()) {
    part.pages.push_back(writer.Finish());
    ++stats_.pages_written;
    pages_written_metric_.Add();
    stats_.simulated_latency_micros += options_.page_latency_micros;
  }
  append_latency_hist_.Observe(watch.ElapsedMicros());
  return Status::OK();
}

Result<std::vector<std::string>> SimulatedDisk::ReadPartition(int partition) {
  std::vector<std::string> records;
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) return records;
  TRACE_SPAN("spill", "read_partition");
  const Stopwatch watch;
  records.reserve(static_cast<size_t>(it->second.record_count));
  for (const auto& page : it->second.pages) {
    ++stats_.pages_read;
    pages_read_metric_.Add();
    stats_.simulated_latency_micros += options_.page_latency_micros;
    PageReader reader(page);
    std::string_view record;
    while (reader.Next(&record)) {
      records.emplace_back(record);
      ++stats_.records_read;
    }
  }
  read_latency_hist_.Observe(watch.ElapsedMicros());
  return records;
}

Status SimulatedDisk::ClearPartition(int partition) {
  partitions_.erase(partition);
  return Status::OK();
}

int64_t SimulatedDisk::PartitionRecordCount(int partition) const {
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? 0 : it->second.record_count;
}

int64_t SimulatedDisk::TotalRecordCount() const {
  int64_t total = 0;
  for (const auto& [id, part] : partitions_) total += part.record_count;
  return total;
}

std::vector<int> SimulatedDisk::NonEmptyPartitions() const {
  std::vector<int> ids;
  for (const auto& [id, part] : partitions_) {
    if (part.record_count > 0) ids.push_back(id);
  }
  return ids;
}

}  // namespace pjoin
