#include "storage/page.h"

#include <cstring>

#include "common/macros.h"

namespace pjoin {
namespace {

void PutU32(std::string* buf, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  buf->append(bytes, 4);
}

uint32_t GetU32(std::string_view buf, size_t pos) {
  uint32_t v;
  PJOIN_DCHECK(pos + 4 <= buf.size());
  std::memcpy(&v, buf.data() + pos, 4);
  return v;
}

}  // namespace

PageWriter::PageWriter(size_t page_size)
    : page_size_(page_size), record_count_(0) {
  PJOIN_DCHECK(page_size >= 16);
  buffer_.reserve(page_size);
  PutU32(&buffer_, 0);  // record count placeholder
}

bool PageWriter::Append(std::string_view record) {
  const size_t needed = 4 + record.size();
  if (buffer_.size() + needed > page_size_) return false;
  PutU32(&buffer_, static_cast<uint32_t>(record.size()));
  buffer_.append(record.data(), record.size());
  ++record_count_;
  return true;
}

std::string PageWriter::Finish() {
  std::string page = std::move(buffer_);
  uint32_t count = record_count_;
  std::memcpy(page.data(), &count, 4);
  page.resize(page_size_, '\0');
  // Reset for reuse.
  buffer_.clear();
  buffer_.reserve(page_size_);
  record_count_ = 0;
  PutU32(&buffer_, 0);
  return page;
}

PageReader::PageReader(std::string_view page)
    : page_(page), pos_(4), consumed_(0) {
  PJOIN_DCHECK(page.size() >= 4);
  record_count_ = GetU32(page, 0);
}

bool PageReader::Next(std::string_view* record) {
  if (consumed_ >= record_count_) return false;
  const uint32_t len = GetU32(page_, pos_);
  pos_ += 4;
  PJOIN_DCHECK(pos_ + len <= page_.size());
  *record = page_.substr(pos_, len);
  pos_ += len;
  ++consumed_;
  return true;
}

}  // namespace pjoin
