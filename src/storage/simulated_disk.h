// SimulatedDisk: an in-memory SpillStore with page-granular I/O accounting
// and a configurable per-page latency model.

#ifndef PJOIN_STORAGE_SIMULATED_DISK_H_
#define PJOIN_STORAGE_SIMULATED_DISK_H_

#include <map>
#include <vector>

#include "obs/metrics_registry.h"
#include "storage/page.h"
#include "storage/spill_store.h"

namespace pjoin {

struct SimulatedDiskOptions {
  size_t page_size = kDefaultPageSize;
  /// Simulated latency charged per page read or written.
  int64_t page_latency_micros = 100;
};

class SimulatedDisk : public SpillStore {
 public:
  explicit SimulatedDisk(SimulatedDiskOptions options = {});

  Status AppendBatch(int partition,
                     const std::vector<std::string>& records) override;
  Result<std::vector<std::string>> ReadPartition(int partition) override;
  Status ClearPartition(int partition) override;
  int64_t PartitionRecordCount(int partition) const override;
  int64_t TotalRecordCount() const override;
  std::vector<int> NonEmptyPartitions() const override;
  const IoStats& io_stats() const override { return stats_; }

 private:
  struct Partition {
    std::vector<std::string> pages;
    int64_t record_count = 0;
  };

  SimulatedDiskOptions options_;
  std::map<int, Partition> partitions_;
  IoStats stats_;
  // Process-wide page-IO tally across all simulated stores
  // (docs/OBSERVABILITY.md); per-store numbers stay in stats_.
  obs::Counter pages_written_metric_;
  obs::Counter pages_read_metric_;
  obs::Histogram append_latency_hist_;
  obs::Histogram read_latency_hist_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_SIMULATED_DISK_H_
