// SpillManager: skew-robust, per-partition spill decisions replacing the
// paper's global-threshold whole-portion relocation (§3.3 / XJoin).
//
// The paper flushes the single largest memory partition whenever the global
// memory threshold is crossed. That collapses under key skew: one hot
// partition keeps blowing the budget while cold partitions are spilled and
// re-read for nothing ("Design Trade-offs for a Robust Dynamic Hybrid Hash
// Join", PAPERS.md). The manager instead:
//
//   1. *Early purge before the write* (PJoin only): consults the opposite
//      stream's punctuation set and drops dead tuples of the victim
//      partition in place — state that never has to touch disk at all.
//   2. Scores partitions by resident bytes weighted by probe coldness and
//      spills the coldest/largest first, so hot build sides stay resident.
//   3. Recursively splits spilled partitions whose largest on-disk unit
//      exceeds a record bound (hybrid-hash style sub-partitioning keyed by
//      further hash bits), bounding later disk-join passes under skew.
//
// Robustness ladder (docs/ROBUSTNESS.md): a partition whose spill fails is
// quarantined for a cooldown and the next-best victim is tried; repeated
// failures flip the manager into the paper's global-threshold mode for the
// rest of the run (a DegradedMode event is emitted); when nothing at all can
// be spilled the memory cap degrades to best-effort (budget_overruns) rather
// than failing the join. IO errors surfaced by the underlying store remain
// recoverable via RecoveringSpillStore exactly as before — the manager only
// decides *what* to spill, never bypasses the store stack.

#ifndef PJOIN_STORAGE_SPILL_MANAGER_H_
#define PJOIN_STORAGE_SPILL_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "exec/event.h"
#include "obs/metrics_registry.h"

namespace pjoin {

/// Victim-selection policy of the SpillManager.
enum class SpillMode {
  /// Per-partition decisions: early purge, coldness-weighted victims,
  /// recursive sub-partitioning (the default).
  kAdaptive,
  /// The paper's behavior: flush the largest memory partition, nothing else.
  /// Also the fallback the manager degrades into after repeated failures.
  kGlobalThreshold,
};

/// Knobs of one SpillManager. Defaults match production; tests shrink the
/// bounds to force every path.
struct SpillPolicy {
  SpillMode mode = SpillMode::kAdaptive;
  /// Purge punctuation-dead tuples of the victim partition in place before
  /// paying the disk write (PJoin wires the purger; XJoin has none).
  bool early_purge = true;
  /// Weight of probe coldness in victim scoring: score = bytes * (1 +
  /// weight * ticks-since-last-access). 0 reduces scoring to largest-first.
  double coldness_weight = 1.0;
  /// Split a spilled partition when its largest on-disk unit exceeds this
  /// many records; 0 disables sub-partitioning.
  int64_t repartition_record_bound = 8192;
  /// Fan-out of one split (further hash bits per level).
  int repartition_fanout = 4;
  /// Maximum split depth per partition (guards single-hot-key skew where
  /// deeper bits cannot separate records).
  int max_repartition_depth = 3;
  /// Cumulative spill/repartition failures before falling back to
  /// kGlobalThreshold mode for the rest of the run.
  int degrade_failure_threshold = 3;
  /// EnsureWithinBudget calls a failed partition sits out before it becomes
  /// a spill candidate again.
  int quarantine_cooldown = 8;
  /// Hysteresis: once over budget, spill down to this fraction of the
  /// threshold instead of stopping just barely under it. Fine-grained
  /// per-partition victims can otherwise free so little that the very next
  /// arrival re-crosses the threshold before the Monitor observes a
  /// below-threshold sample, so its kStateFull latch never re-arms.
  double low_water_fraction = 0.875;
};

/// Decision counters of one manager (mirrored into the process-wide metrics
/// registry; see docs/OBSERVABILITY.md).
struct SpillDecisionStats {
  int64_t spills = 0;
  int64_t tuples_spilled = 0;
  int64_t bytes_spilled = 0;
  int64_t early_purge_runs = 0;
  int64_t tuples_early_purged = 0;
  int64_t bytes_early_purged = 0;
  int64_t repartitions = 0;
  int64_t spill_failures = 0;
  int64_t repartition_failures = 0;
  /// EnsureWithinBudget calls that returned while still over budget because
  /// every candidate was quarantined or empty (best-effort cap).
  int64_t budget_overruns = 0;
  /// True once the manager fell back to global-threshold mode.
  bool degraded = false;
};

/// What the manager needs from one join state (HashState implements this;
/// the indirection keeps storage/ independent of join/).
class SpillableState {
 public:
  virtual ~SpillableState() = default;

  virtual int num_spill_partitions() const = 0;
  virtual int64_t TotalMemoryTuples() const = 0;
  virtual int64_t TotalMemoryBytes() const = 0;
  virtual int64_t PartitionMemoryTuples(int p) const = 0;
  virtual int64_t PartitionMemoryBytes(int p) const = 0;
  /// Tick of the partition's most recent insert or probe (0 = never).
  virtual int64_t PartitionLastAccessTick(int p) const = 0;

  /// Moves the memory portion of `p` to disk, stamping dts = `dts_tick`.
  [[nodiscard]] virtual Status SpillPartition(int p, int64_t dts_tick) = 0;

  /// Records in the largest single on-disk unit of `p` (the base portion or
  /// one sub-partition).
  virtual int64_t LargestSpillUnitRecords(int p) const = 0;
  /// Splits the largest on-disk unit of `p` into `fanout` sub-partitions
  /// keyed by further hash bits. Returns FailedPrecondition when no further
  /// split can make progress (depth exhausted or all records share a hash);
  /// any other error is a storage failure.
  [[nodiscard]] virtual Status SplitSpilledPartition(int p, int fanout,
                                                     int max_depth) = 0;
};

/// Outcome of one early-purge pass over a partition.
struct EarlyPurgeOutcome {
  int64_t tuples = 0;
  int64_t bytes = 0;
};

class SpillManager {
 public:
  using EventSink = std::function<void(const Event&)>;
  /// Purges punctuation-dead tuples of state `side`'s partition `p` in
  /// place and reports what was freed. Must not touch disk.
  using EarlyPurger = std::function<EarlyPurgeOutcome(int side, int p)>;

  /// `left` / `right` must outlive the manager.
  SpillManager(SpillPolicy policy, SpillableState* left,
               SpillableState* right);

  void set_early_purger(EarlyPurger purger) { purger_ = std::move(purger); }
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  /// Spills (after early purge, in adaptive mode) until the combined
  /// in-memory state drops below both thresholds, consuming dts ticks from
  /// `next_tick`. `now_tick` is the current event tick, used for coldness
  /// scoring. Returns OK even when the budget cannot be met (see
  /// SpillDecisionStats::budget_overruns); non-OK only for unrecoverable
  /// storage errors outside the manager's own retry ladder.
  [[nodiscard]] Status EnsureWithinBudget(
      int64_t threshold_tuples, int64_t threshold_bytes, int64_t now_tick,
      const std::function<int64_t()>& next_tick);

  const SpillDecisionStats& stats() const { return stats_; }
  const SpillPolicy& policy() const { return policy_; }
  bool degraded() const { return stats_.degraded; }
  /// (side, partition) slots currently in quarantine cooldown (also gauge
  /// pjoin_spill_quarantined_partitions, shared across managers).
  int quarantined_partitions() const;
  /// kGlobalThreshold when configured so *or* after degradation.
  SpillMode effective_mode() const {
    return stats_.degraded ? SpillMode::kGlobalThreshold : policy_.mode;
  }

 private:
  struct Candidate {
    int side = -1;
    int partition = -1;
    int64_t tuples = 0;
  };

  bool OverBudget(int64_t threshold_tuples, int64_t threshold_bytes) const;
  Candidate PickVictim(int64_t now_tick) const;
  bool Quarantined(int side, int p) const;
  void Quarantine(int side, int p);
  void DecayQuarantine();
  void RecordFailure();

  SpillPolicy policy_;
  SpillableState* states_[2];
  EarlyPurger purger_;
  EventSink sink_;
  SpillDecisionStats stats_;
  int failures_ = 0;
  /// Remaining cooldown per (side, partition); index = side * P + p.
  std::vector<int> cooldown_;
  /// Partitions where splitting can no longer make progress.
  std::vector<bool> split_exhausted_;

  // Process-wide exposition (shared cells across managers; see /metrics).
  obs::Counter bytes_spilled_counter_;
  obs::Counter bytes_early_purged_counter_;
  obs::Histogram resident_bytes_hist_;
  /// Maintained with Add(±1) on 0↔nonzero cooldown transitions, so
  /// managers sharing the cell stay additive; pjoin_spill_degraded is
  /// sticky (any manager degrading sets it).
  obs::Gauge quarantined_gauge_;
  obs::Gauge degraded_gauge_;
};

/// Marks operations issued while a spilled partition is being split, so
/// fault injection (FaultySpillStore) can target the repartition path
/// specifically. Thread-local; nesting keeps the innermost phase.
enum class SpillPhase { kNormal, kRepartition };

class SpillPhaseScope {
 public:
  explicit SpillPhaseScope(SpillPhase phase);
  ~SpillPhaseScope();
  PJOIN_DISALLOW_COPY_AND_MOVE(SpillPhaseScope);

 private:
  SpillPhase previous_;
};

SpillPhase CurrentSpillPhase();

}  // namespace pjoin

#endif  // PJOIN_STORAGE_SPILL_MANAGER_H_
