// Page: a fixed-size byte page holding variable-length records. The unit of
// I/O for the spill stores used by state relocation and disk join.

#ifndef PJOIN_STORAGE_PAGE_H_
#define PJOIN_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pjoin {

constexpr size_t kDefaultPageSize = 4096;

/// A page is a byte buffer with records appended front-to-back. Layout:
///   [u32 record_count][record...]
///   record := [u32 length][bytes]
/// Records never span pages; a record larger than the page capacity is
/// rejected by the writer.
class PageWriter {
 public:
  explicit PageWriter(size_t page_size = kDefaultPageSize);

  /// Appends a record if it fits; returns false when the page is full.
  bool Append(std::string_view record);

  /// True if no record has been appended.
  bool empty() const { return record_count_ == 0; }
  size_t record_count() const { return record_count_; }
  size_t page_size() const { return page_size_; }

  /// Finalizes and returns the page bytes (always exactly page_size long),
  /// resetting the writer for reuse.
  std::string Finish();

 private:
  size_t page_size_;
  std::string buffer_;
  uint32_t record_count_;
};

/// Iterates the records of one page produced by PageWriter.
class PageReader {
 public:
  explicit PageReader(std::string_view page);

  /// Returns the next record, or false when the page is exhausted. The
  /// returned view borrows from the page buffer.
  bool Next(std::string_view* record);

  uint32_t record_count() const { return record_count_; }

 private:
  std::string_view page_;
  size_t pos_;
  uint32_t record_count_;
  uint32_t consumed_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_PAGE_H_
