// FileSpillStore: a SpillStore writing pages to one real temporary file.

#ifndef PJOIN_STORAGE_FILE_SPILL_STORE_H_
#define PJOIN_STORAGE_FILE_SPILL_STORE_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "obs/metrics_registry.h"
#include "storage/page.h"
#include "storage/spill_store.h"

namespace pjoin {

class FileSpillStore : public SpillStore {
 public:
  /// Opens (creates/truncates) the backing file at `path` and immediately
  /// unlinks its name (POSIX semantics keep the open file usable), so even
  /// a crashed run never leaks the temp file.
  static Result<std::unique_ptr<FileSpillStore>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize);

  ~FileSpillStore() override;
  PJOIN_DISALLOW_COPY_AND_MOVE(FileSpillStore);

  /// Flushes and closes the backing file, surfacing deferred write errors
  /// (the destructor calls this and can only log them). Idempotent; any
  /// I/O after Close fails with FailedPrecondition.
  Status Close();

  Status AppendBatch(int partition,
                     const std::vector<std::string>& records) override;
  Result<std::vector<std::string>> ReadPartition(int partition) override;
  Status ClearPartition(int partition) override;
  int64_t PartitionRecordCount(int partition) const override;
  int64_t TotalRecordCount() const override;
  std::vector<int> NonEmptyPartitions() const override;
  const IoStats& io_stats() const override { return stats_; }

  /// Pages the backing file has ever grown by (high-water mark). A cleared
  /// partition's pages return to the free list and are reused before the
  /// file is extended, so repeated spill/clear cycles keep this bounded.
  int64_t allocated_pages() const { return next_page_index_; }
  /// Reclaimed pages currently awaiting reuse.
  int64_t free_pages() const { return static_cast<int64_t>(free_pages_.size()); }

 private:
  FileSpillStore(std::FILE* file, std::string path, size_t page_size);

  Status WritePage(const std::string& page, int64_t* page_index);

  struct Partition {
    std::vector<int64_t> page_indexes;
    int64_t record_count = 0;
  };

  std::FILE* file_;
  std::string path_;
  size_t page_size_;
  int64_t next_page_index_ = 0;
  /// Page slots released by ClearPartition, reused LIFO by WritePage.
  std::vector<int64_t> free_pages_;
  std::map<int, Partition> partitions_;
  IoStats stats_;
  // Process-wide page-IO tally across all file stores
  // (docs/OBSERVABILITY.md); per-store numbers stay in stats_.
  obs::Counter pages_written_metric_;
  obs::Counter pages_read_metric_;
  obs::Histogram append_latency_hist_;
  obs::Histogram read_latency_hist_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_FILE_SPILL_STORE_H_
