#include "storage/spill_manager.h"

#include <algorithm>

namespace pjoin {
namespace {

thread_local SpillPhase g_spill_phase = SpillPhase::kNormal;

}  // namespace

SpillPhaseScope::SpillPhaseScope(SpillPhase phase) : previous_(g_spill_phase) {
  g_spill_phase = phase;
}

SpillPhaseScope::~SpillPhaseScope() { g_spill_phase = previous_; }

SpillPhase CurrentSpillPhase() { return g_spill_phase; }

SpillManager::SpillManager(SpillPolicy policy, SpillableState* left,
                           SpillableState* right)
    : policy_(policy), states_{left, right} {
  PJOIN_DCHECK(left != nullptr && right != nullptr);
  PJOIN_DCHECK(left->num_spill_partitions() == right->num_spill_partitions());
  const size_t slots =
      2 * static_cast<size_t>(left->num_spill_partitions());
  cooldown_.assign(slots, 0);
  split_exhausted_.assign(slots, false);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  bytes_spilled_counter_ =
      registry.GetCounter("pjoin_spill_bytes_spilled", "");
  bytes_early_purged_counter_ =
      registry.GetCounter("pjoin_spill_bytes_early_purged", "");
  resident_bytes_hist_ = registry.GetHistogram(
      "pjoin_spill_partition_resident_bytes", "", /*unit_scale=*/1.0);
  quarantined_gauge_ =
      registry.GetGauge("pjoin_spill_quarantined_partitions", "");
  degraded_gauge_ = registry.GetGauge("pjoin_spill_degraded", "");
}

int SpillManager::quarantined_partitions() const {
  int n = 0;
  for (const int c : cooldown_) {
    if (c > 0) ++n;
  }
  return n;
}

bool SpillManager::OverBudget(int64_t threshold_tuples,
                              int64_t threshold_bytes) const {
  const int64_t tuples =
      states_[0]->TotalMemoryTuples() + states_[1]->TotalMemoryTuples();
  if (tuples >= threshold_tuples) return true;
  if (threshold_bytes <= 0) return false;
  const int64_t bytes =
      states_[0]->TotalMemoryBytes() + states_[1]->TotalMemoryBytes();
  return bytes >= threshold_bytes;
}

bool SpillManager::Quarantined(int side, int p) const {
  return cooldown_[static_cast<size_t>(
             side * states_[0]->num_spill_partitions() + p)] > 0;
}

void SpillManager::Quarantine(int side, int p) {
  int& slot = cooldown_[static_cast<size_t>(
      side * states_[0]->num_spill_partitions() + p)];
  // Incremental Add on the 0→nonzero transition (not Set): managers
  // sharing the process-wide gauge cell stay additive.
  if (slot == 0 && policy_.quarantine_cooldown > 0) {
    quarantined_gauge_.Add(1);
  }
  slot = policy_.quarantine_cooldown;
}

void SpillManager::DecayQuarantine() {
  for (int& c : cooldown_) {
    if (c > 0 && --c == 0) quarantined_gauge_.Add(-1);
  }
}

void SpillManager::RecordFailure() {
  ++failures_;
  if (!stats_.degraded && failures_ >= policy_.degrade_failure_threshold) {
    stats_.degraded = true;
    degraded_gauge_.Set(1);
    if (sink_) {
      sink_(Event{EventType::kDegradedMode, /*time=*/0, /*stream=*/-1,
                  "spill-manager: falling back to global-threshold mode "
                  "after " +
                      std::to_string(failures_) + " storage failures"});
    }
  }
}

SpillManager::Candidate SpillManager::PickVictim(int64_t now_tick) const {
  Candidate best;
  const bool adaptive = effective_mode() == SpillMode::kAdaptive;
  double best_score = 0.0;
  for (int side = 0; side < 2; ++side) {
    const SpillableState& state = *states_[side];
    for (int p = 0; p < state.num_spill_partitions(); ++p) {
      const int64_t tuples = state.PartitionMemoryTuples(p);
      if (tuples <= 0 || Quarantined(side, p)) continue;
      double score;
      if (adaptive) {
        const int64_t bytes = state.PartitionMemoryBytes(p);
        const int64_t age =
            std::max<int64_t>(0, now_tick - state.PartitionLastAccessTick(p));
        score = static_cast<double>(bytes) *
                (1.0 + policy_.coldness_weight * static_cast<double>(age));
      } else {
        // The paper's rule: largest memory portion by tuple count.
        score = static_cast<double>(tuples);
      }
      if (score > best_score) {
        best_score = score;
        best = Candidate{side, p, tuples};
      }
    }
  }
  return best;
}

Status SpillManager::EnsureWithinBudget(
    int64_t threshold_tuples, int64_t threshold_bytes, int64_t now_tick,
    const std::function<int64_t()>& next_tick) {
  if (!OverBudget(threshold_tuples, threshold_bytes)) return Status::OK();
  DecayQuarantine();
  // Hysteresis targets: overshoot below the trigger thresholds so the
  // caller's Monitor observes below-threshold samples and its kStateFull
  // latch re-arms (see SpillPolicy::low_water_fraction).
  double fraction = policy_.low_water_fraction;
  if (!(fraction > 0.0) || fraction > 1.0) fraction = 1.0;
  const auto scale_down = [fraction](int64_t v) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(v) * fraction));
  };
  const int64_t low_tuples = scale_down(threshold_tuples);
  const int64_t low_bytes = threshold_bytes > 0 ? scale_down(threshold_bytes)
                                                : threshold_bytes;
  bool overran = false;
  while (OverBudget(low_tuples, low_bytes)) {
    const Candidate victim = PickVictim(now_tick);
    if (victim.side < 0) {
      // Everything spillable is empty or quarantined: the cap becomes
      // best-effort rather than a join failure.
      overran = true;
      break;
    }
    SpillableState& state = *states_[victim.side];
    if (effective_mode() == SpillMode::kAdaptive && policy_.early_purge &&
        purger_) {
      // Dead state never has to touch disk: purge the victim in place
      // first, and skip the write entirely when that already freed enough.
      const EarlyPurgeOutcome freed = purger_(victim.side, victim.partition);
      if (freed.tuples > 0) {
        ++stats_.early_purge_runs;
        stats_.tuples_early_purged += freed.tuples;
        stats_.bytes_early_purged += freed.bytes;
        bytes_early_purged_counter_.Add(freed.bytes);
        if (!OverBudget(low_tuples, low_bytes)) break;
        if (state.PartitionMemoryTuples(victim.partition) <= 0) continue;
      }
    }
    const int64_t resident_bytes =
        state.PartitionMemoryBytes(victim.partition);
    const int64_t resident_tuples =
        state.PartitionMemoryTuples(victim.partition);
    resident_bytes_hist_.Observe(resident_bytes);
    Status st = state.SpillPartition(victim.partition, next_tick());
    if (!st.ok()) {
      // A failed flush keeps its unpersisted tuples in memory (HashState
      // drops exactly the durable prefix); quarantine the partition and try
      // the next victim instead of failing the join.
      ++stats_.spill_failures;
      Quarantine(victim.side, victim.partition);
      RecordFailure();
      continue;
    }
    ++stats_.spills;
    stats_.tuples_spilled += resident_tuples;
    stats_.bytes_spilled += resident_bytes;
    bytes_spilled_counter_.Add(resident_bytes);
    const size_t slot = static_cast<size_t>(
        victim.side * states_[0]->num_spill_partitions() + victim.partition);
    if (effective_mode() == SpillMode::kAdaptive &&
        policy_.repartition_record_bound > 0 && !split_exhausted_[slot] &&
        state.LargestSpillUnitRecords(victim.partition) >
            policy_.repartition_record_bound) {
      Status split = state.SplitSpilledPartition(
          victim.partition, policy_.repartition_fanout,
          policy_.max_repartition_depth);
      if (split.ok()) {
        ++stats_.repartitions;
      } else if (split.code() == StatusCode::kFailedPrecondition) {
        // No further hash bits can separate this partition's records
        // (single hot key / depth exhausted) — stop trying, not a failure.
        split_exhausted_[slot] = true;
      } else {
        ++stats_.repartition_failures;
        RecordFailure();
      }
    }
  }
  if (overran) ++stats_.budget_overruns;
  return Status::OK();
}

}  // namespace pjoin
