#include "storage/file_spill_store.h"

#include <cstring>
#include <memory>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pjoin {

Result<std::unique_ptr<FileSpillStore>> FileSpillStore::Open(
    const std::string& path, size_t page_size) {
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError("cannot open spill file '" + path +
                           "': " + std::strerror(errno));
  }
  // Unlink the name immediately (POSIX keeps the open file alive): a
  // crashed or killed run can never leak the temp file, and Close() need
  // not race anyone for the name.
  std::remove(path.c_str());
  return std::unique_ptr<FileSpillStore>(
      new FileSpillStore(file, path, page_size));
}

FileSpillStore::FileSpillStore(std::FILE* file, std::string path,
                               size_t page_size)
    : file_(file),
      path_(std::move(path)),
      page_size_(page_size),
      pages_written_metric_(obs::MetricsRegistry::Global().GetCounter(
          "spill.pages_written", "store=file")),
      pages_read_metric_(obs::MetricsRegistry::Global().GetCounter(
          "spill.pages_read", "store=file")),
      append_latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "pjoin_spill_page_io_seconds", "store=file,op=append",
          /*unit_scale=*/1e-6)),
      read_latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "pjoin_spill_page_io_seconds", "store=file,op=read",
          /*unit_scale=*/1e-6)) {}

FileSpillStore::~FileSpillStore() {
  const Status status = Close();
  if (!status.ok()) {
    PJOIN_LOG(kWarn) << "closing spill file '" << path_
                     << "': " << status.ToString();
  }
}

Status FileSpillStore::Close() {
  if (file_ == nullptr) return Status::OK();
  std::FILE* file = file_;
  file_ = nullptr;
  Status status;
  if (std::fflush(file) != 0) {
    status = Status::IOError("flush of spill file '" + path_ +
                             "' failed: " + std::strerror(errno));
  }
  // fclose may surface deferred write errors (e.g. ENOSPC) — check it.
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IOError("close of spill file '" + path_ +
                             "' failed: " + std::strerror(errno));
  }
  // Defensive: the name was already unlinked at Open; ignore the result.
  std::remove(path_.c_str());
  return status;
}

Status FileSpillStore::WritePage(const std::string& page,
                                 int64_t* page_index) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill file already closed");
  }
  // Reuse a reclaimed page slot before extending the file, so clear/spill
  // cycles (disk-join compaction, fully-purged partitions) keep the file
  // size bounded by the live page count.
  const bool reused = !free_pages_.empty();
  const int64_t index = reused ? free_pages_.back() : next_page_index_;
  if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(page.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write to spill file");
  }
  // Flush before any read-back: stdio buffers writes, and ReadPartition may
  // fetch this page within the same batch's disk join. Also surfaces write
  // errors here instead of at some later read.
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush of spill file failed: " +
                           std::string(std::strerror(errno)));
  }
  // Claim the slot only once the page is durable: a failed write leaves a
  // reused slot on the free list (its content is garbage either way).
  if (reused) {
    free_pages_.pop_back();
  } else {
    ++next_page_index_;
  }
  ++stats_.pages_written;
  pages_written_metric_.Add();
  *page_index = index;
  return Status::OK();
}

Status FileSpillStore::AppendBatch(int partition,
                                   const std::vector<std::string>& records) {
  if (records.empty()) return Status::OK();
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill file already closed");
  }
  TRACE_SPAN("spill", "append_batch");
  const Stopwatch watch;
  Partition& part = partitions_[partition];
  PageWriter writer(page_size_);
  // Commit accounting only after the page holding a record is durable:
  // RecoveringSpillStore resumes failed batches from PartitionRecordCount,
  // so counting records ahead of a failed write would skip them on retry.
  int64_t staged = 0;
  for (const auto& record : records) {
    if (record.size() + 8 > page_size_) {
      return Status::InvalidArgument("record larger than page size");
    }
    if (!writer.Append(record)) {
      int64_t index = 0;
      PJOIN_RETURN_NOT_OK(WritePage(writer.Finish(), &index));
      part.page_indexes.push_back(index);
      part.record_count += staged;
      stats_.records_written += staged;
      staged = 0;
      const bool ok = writer.Append(record);
      PJOIN_DCHECK(ok);
    }
    ++staged;
  }
  if (!writer.empty()) {
    int64_t index = 0;
    PJOIN_RETURN_NOT_OK(WritePage(writer.Finish(), &index));
    part.page_indexes.push_back(index);
  }
  part.record_count += staged;
  stats_.records_written += staged;
  append_latency_hist_.Observe(watch.ElapsedMicros());
  return Status::OK();
}

Result<std::vector<std::string>> FileSpillStore::ReadPartition(int partition) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill file already closed");
  }
  std::vector<std::string> records;
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) return records;
  TRACE_SPAN("spill", "read_partition");
  const Stopwatch watch;
  std::string page(page_size_, '\0');
  for (int64_t index : it->second.page_indexes) {
    if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) !=
        0) {
      return Status::IOError("seek failed");
    }
    if (std::fread(page.data(), 1, page_size_, file_) != page_size_) {
      return Status::IOError("short read from spill file");
    }
    ++stats_.pages_read;
    pages_read_metric_.Add();
    PageReader reader(page);
    std::string_view record;
    while (reader.Next(&record)) {
      records.emplace_back(record);
      ++stats_.records_read;
    }
  }
  read_latency_hist_.Observe(watch.ElapsedMicros());
  return records;
}

Status FileSpillStore::ClearPartition(int partition) {
  // Release the partition's pages for reuse immediately instead of letting
  // them persist until Close: a fully-purged partition no longer pins file
  // space.
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) return Status::OK();
  free_pages_.insert(free_pages_.end(), it->second.page_indexes.begin(),
                     it->second.page_indexes.end());
  partitions_.erase(it);
  return Status::OK();
}

int64_t FileSpillStore::PartitionRecordCount(int partition) const {
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? 0 : it->second.record_count;
}

int64_t FileSpillStore::TotalRecordCount() const {
  int64_t total = 0;
  for (const auto& [id, part] : partitions_) total += part.record_count;
  return total;
}

std::vector<int> FileSpillStore::NonEmptyPartitions() const {
  std::vector<int> ids;
  for (const auto& [id, part] : partitions_) {
    if (part.record_count > 0) ids.push_back(id);
  }
  return ids;
}

}  // namespace pjoin
