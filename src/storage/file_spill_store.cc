#include "storage/file_spill_store.h"

#include <cstring>
#include <memory>

namespace pjoin {

Result<std::unique_ptr<FileSpillStore>> FileSpillStore::Open(
    const std::string& path, size_t page_size) {
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError("cannot open spill file '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<FileSpillStore>(
      new FileSpillStore(file, path, page_size));
}

FileSpillStore::FileSpillStore(std::FILE* file, std::string path,
                               size_t page_size)
    : file_(file), path_(std::move(path)), page_size_(page_size) {}

FileSpillStore::~FileSpillStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

Status FileSpillStore::WritePage(const std::string& page,
                                 int64_t* page_index) {
  const int64_t index = next_page_index_;
  if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(page.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write to spill file");
  }
  ++next_page_index_;
  ++stats_.pages_written;
  *page_index = index;
  return Status::OK();
}

Status FileSpillStore::AppendBatch(int partition,
                                   const std::vector<std::string>& records) {
  if (records.empty()) return Status::OK();
  Partition& part = partitions_[partition];
  PageWriter writer(page_size_);
  for (const auto& record : records) {
    if (record.size() + 8 > page_size_) {
      return Status::InvalidArgument("record larger than page size");
    }
    if (!writer.Append(record)) {
      int64_t index = 0;
      PJOIN_RETURN_NOT_OK(WritePage(writer.Finish(), &index));
      part.page_indexes.push_back(index);
      const bool ok = writer.Append(record);
      PJOIN_DCHECK(ok);
    }
    ++part.record_count;
    ++stats_.records_written;
  }
  if (!writer.empty()) {
    int64_t index = 0;
    PJOIN_RETURN_NOT_OK(WritePage(writer.Finish(), &index));
    part.page_indexes.push_back(index);
  }
  return Status::OK();
}

Result<std::vector<std::string>> FileSpillStore::ReadPartition(int partition) {
  std::vector<std::string> records;
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) return records;
  std::string page(page_size_, '\0');
  for (int64_t index : it->second.page_indexes) {
    if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) !=
        0) {
      return Status::IOError("seek failed");
    }
    if (std::fread(page.data(), 1, page_size_, file_) != page_size_) {
      return Status::IOError("short read from spill file");
    }
    ++stats_.pages_read;
    PageReader reader(page);
    std::string_view record;
    while (reader.Next(&record)) {
      records.emplace_back(record);
      ++stats_.records_read;
    }
  }
  return records;
}

Status FileSpillStore::ClearPartition(int partition) {
  // Pages are not reclaimed (append-only file); the partition is forgotten.
  partitions_.erase(partition);
  return Status::OK();
}

int64_t FileSpillStore::PartitionRecordCount(int partition) const {
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? 0 : it->second.record_count;
}

int64_t FileSpillStore::TotalRecordCount() const {
  int64_t total = 0;
  for (const auto& [id, part] : partitions_) total += part.record_count;
  return total;
}

std::vector<int> FileSpillStore::NonEmptyPartitions() const {
  std::vector<int> ids;
  for (const auto& [id, part] : partitions_) {
    if (part.record_count > 0) ids.push_back(id);
  }
  return ids;
}

}  // namespace pjoin
