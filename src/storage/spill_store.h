// SpillStore: partition-addressed record storage backing state relocation
// (paper §3.3) and disk join (§3.2).
//
// The join serializes tuple entries to byte records; the store only sees
// bytes grouped into pages. Two implementations:
//  - SimulatedDisk: pages kept in memory with full I/O accounting. This is
//    the default substrate — the algorithms only need a partition-addressed
//    page store, and I/O *counts* are what the analysis uses (DESIGN.md,
//    substitution table).
//  - FileSpillStore: pages written to a real temporary file.

#ifndef PJOIN_STORAGE_SPILL_STORE_H_
#define PJOIN_STORAGE_SPILL_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pjoin {

/// I/O accounting common to all spill stores.
struct IoStats {
  int64_t pages_written = 0;
  int64_t pages_read = 0;
  int64_t records_written = 0;
  int64_t records_read = 0;
  /// Simulated time spent on I/O given a per-page latency model.
  int64_t simulated_latency_micros = 0;

  std::string ToString() const;
};

class SpillStore {
 public:
  virtual ~SpillStore() = default;

  /// Appends records to the given partition.
  virtual Status AppendBatch(int partition,
                             const std::vector<std::string>& records) = 0;

  /// Reads back every record ever appended to the partition, in append
  /// order. The partition keeps its contents.
  [[nodiscard]] virtual Result<std::vector<std::string>> ReadPartition(
      int partition) = 0;

  /// Drops all records of the partition.
  virtual Status ClearPartition(int partition) = 0;

  /// Number of records currently stored in the partition.
  [[nodiscard]] virtual int64_t PartitionRecordCount(int partition) const = 0;

  /// Total records across all partitions.
  [[nodiscard]] virtual int64_t TotalRecordCount() const = 0;

  /// Partitions with at least one record.
  [[nodiscard]] virtual std::vector<int> NonEmptyPartitions() const = 0;

  virtual const IoStats& io_stats() const = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_SPILL_STORE_H_
