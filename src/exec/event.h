// The event vocabulary of PJoin's event-driven framework (paper §3.6).

#ifndef PJOIN_EXEC_EVENT_H_
#define PJOIN_EXEC_EVENT_H_

#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"

namespace pjoin {

/// The events of §3.6. The paper's printed list skips number 4; from the
/// surrounding text ("both input streams are temporarily stuck ... and the
/// disk join activation threshold is reached") it is the disk-join
/// activation event, which we name explicitly.
enum class EventType {
  /// Both input streams have (temporarily) run out of tuples.
  kStreamEmpty = 0,
  /// The purge threshold was reached (lazy purge trigger).
  kPurgeThresholdReach,
  /// The in-memory join state reached the memory threshold.
  kStateFull,
  /// Disk-resident state exceeds the disk-join activation threshold while
  /// inputs are stalled.
  kDiskJoinActivate,
  /// A downstream operator requested punctuation propagation (pull mode).
  kPropagateRequest,
  /// The time propagation threshold expired (push mode).
  kPropagateTimeExpire,
  /// The count propagation threshold was reached (push mode).
  kPropagateCountReach,
  // ---- Robustness events (beyond the paper; see docs/ROBUSTNESS.md) ----
  /// A storage operation failed (transient or permanent I/O error).
  kIoError,
  /// An input element violated the punctuation contract (late tuple,
  /// malformed or non-prefix punctuation).
  kContractViolation,
  /// A component switched to a degraded operating mode (e.g. spill storage
  /// fell back from the file store to the in-memory store).
  kDegradedMode,
  // ---- Parallel-execution events (docs/PERFORMANCE.md) ----
  /// A shard of a partition-parallel join run reports its final occupancy
  /// (elements routed, results emitted, state size). `stream` carries the
  /// shard id; `detail` a key=value summary.
  kShardStats,
  // ---- Health events (docs/OBSERVABILITY.md) ----
  /// The health watchdog classified the pipeline as STALLED. `detail`
  /// carries the root-cause chain ("shard 2 frontier stalled 4.2s ...").
  kStallDiagnosed,
};

constexpr int kNumEventTypes = 12;

std::string_view EventTypeName(EventType type);

/// A dispatched event instance.
struct Event {
  EventType type;
  /// Time at which the monitor raised the event.
  TimeMicros time = 0;
  /// Input index (0/1) the event pertains to, or -1 when global.
  int stream = -1;
  /// Free-form context for diagnostics (violation kind, failed operation,
  /// ...); empty for the classic §3.6 events.
  std::string detail;

  std::string ToString() const;
};

/// A component that can be registered to handle events (memory join, disk
/// join, state purge, state relocation, index build, propagation, ...).
class EventListener {
 public:
  virtual ~EventListener() = default;
  /// Stable component name, shown in the registry table.
  virtual std::string_view name() const = 0;
  /// Reacts to one event.
  virtual Status HandleEvent(const Event& event) = 0;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_EVENT_H_
