#include "exec/event.h"

#include <sstream>

namespace pjoin {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kStreamEmpty:
      return "StreamEmptyEvent";
    case EventType::kPurgeThresholdReach:
      return "PurgeThresholdReachEvent";
    case EventType::kStateFull:
      return "StateFullEvent";
    case EventType::kDiskJoinActivate:
      return "DiskJoinActivateEvent";
    case EventType::kPropagateRequest:
      return "PropagateRequestEvent";
    case EventType::kPropagateTimeExpire:
      return "PropagateTimeExpireEvent";
    case EventType::kPropagateCountReach:
      return "PropagateCountReachEvent";
  }
  return "?";
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << EventTypeName(type) << "@" << time;
  if (stream >= 0) os << " stream=" << stream;
  return os.str();
}

}  // namespace pjoin
