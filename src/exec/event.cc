#include "exec/event.h"

#include <sstream>

namespace pjoin {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kStreamEmpty:
      return "StreamEmptyEvent";
    case EventType::kPurgeThresholdReach:
      return "PurgeThresholdReachEvent";
    case EventType::kStateFull:
      return "StateFullEvent";
    case EventType::kDiskJoinActivate:
      return "DiskJoinActivateEvent";
    case EventType::kPropagateRequest:
      return "PropagateRequestEvent";
    case EventType::kPropagateTimeExpire:
      return "PropagateTimeExpireEvent";
    case EventType::kPropagateCountReach:
      return "PropagateCountReachEvent";
    case EventType::kIoError:
      return "IoErrorEvent";
    case EventType::kContractViolation:
      return "ContractViolationEvent";
    case EventType::kDegradedMode:
      return "DegradedModeEvent";
    case EventType::kShardStats:
      return "ShardStatsEvent";
    case EventType::kStallDiagnosed:
      return "StallDiagnosedEvent";
  }
  return "?";
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << EventTypeName(type) << "@" << time;
  if (stream >= 0) os << " stream=" << stream;
  if (!detail.empty()) os << " [" << detail << "]";
  return os.str();
}

}  // namespace pjoin
