// Monitor: tracks the runtime parameters of a join execution and raises
// events through the registry when thresholds are crossed (paper §3.6).

#ifndef PJOIN_EXEC_MONITOR_H_
#define PJOIN_EXEC_MONITOR_H_

#include <cstdint>
#include <limits>

#include "common/clock.h"
#include "exec/registry.h"

namespace pjoin {

/// All threshold parameters of §3.6. They can be changed at runtime through
/// Monitor::params().
struct RuntimeParams {
  /// Punctuations between two state purges; 1 = eager purge (paper §3.4).
  int64_t purge_threshold = 1;
  /// In-memory state capacity in tuples (both states combined); crossing it
  /// raises StateFullEvent (state relocation). Default: effectively infinite.
  int64_t memory_threshold_tuples = std::numeric_limits<int64_t>::max();
  /// In-memory state capacity in payload bytes (both states combined);
  /// 0 disables the byte-based trigger. Either threshold crossing raises
  /// StateFullEvent.
  int64_t memory_threshold_bytes = 0;
  /// Push-mode propagation: raise PropagateCountReachEvent every this many
  /// newly arrived punctuations. 0 disables the count trigger.
  int64_t propagate_count_threshold = 0;
  /// Push-mode propagation: raise PropagateTimeExpireEvent when this much
  /// time has passed since the last propagation. 0 disables the time trigger.
  TimeMicros propagate_time_threshold = 0;
  /// Minimum number of disk-resident tuples for the disk join to be worth
  /// scheduling when the inputs stall (XJoin's activation threshold).
  int64_t disk_join_activation_threshold = 1;
};

class Monitor {
 public:
  Monitor(RuntimeParams params, EventRegistry* registry, const Clock* clock);

  /// Thresholds, tunable at runtime.
  RuntimeParams& params() { return params_; }
  const RuntimeParams& params() const { return params_; }

  // ---- Notifications from the join execution ----

  /// A punctuation arrived on input `stream`. May raise
  /// PurgeThresholdReachEvent and/or PropagateCountReachEvent.
  Status OnPunctuationArrived(int stream);

  /// In-memory state size changed; raises StateFullEvent when the tuple or
  /// byte memory threshold is reached.
  Status OnStateSizeChanged(int64_t in_memory_tuples,
                            int64_t in_memory_bytes = 0);

  /// Both inputs are stalled/drained; raises StreamEmptyEvent, and
  /// DiskJoinActivateEvent when `disk_resident_tuples` passes the activation
  /// threshold.
  Status OnStreamsEmpty(int64_t disk_resident_tuples);

  /// Pull-mode propagation request from a downstream operator.
  Status RequestPropagation();

  /// Periodic driver tick; raises PropagateTimeExpireEvent when the time
  /// threshold expired.
  Status Tick();

  // ---- Acknowledgements that reset trigger counters ----

  /// The purge component ran; resets the punctuations-since-purge counter.
  void OnPurgeRan();
  /// The propagation component ran; resets count and time triggers.
  void OnPropagationRan();

  // ---- Introspection ----
  int64_t puncts_since_purge(int stream) const;
  int64_t puncts_since_propagation() const { return puncts_since_propagation_; }

 private:
  Event MakeEvent(EventType type, int stream = -1) const;

  RuntimeParams params_;
  EventRegistry* registry_;
  const Clock* clock_;
  int64_t puncts_since_purge_[2] = {0, 0};
  int64_t puncts_since_propagation_ = 0;
  TimeMicros last_propagation_time_ = 0;
  bool state_full_raised_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_MONITOR_H_
