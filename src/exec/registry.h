// EventRegistry: the event–listener registry of paper §3.6 / Table 1.
//
// Each entry names the event, an optional additional condition, and the
// listeners executed (in registration order) when the event fires. The
// registry is initialized at configuration time and may be rewired at
// runtime.

#ifndef PJOIN_EXEC_REGISTRY_H_
#define PJOIN_EXEC_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/event.h"

namespace pjoin {

class EventRegistry {
 public:
  /// Extra guard evaluated at dispatch time; the listener only runs when it
  /// returns true. A null condition always passes.
  using Condition = std::function<bool(const Event&)>;

  /// Appends `listener` to the handler list of `type`.
  void Register(EventType type, EventListener* listener,
                Condition condition = nullptr);

  /// Removes every registration of `listener` for `type`.
  void Unregister(EventType type, const EventListener* listener);

  /// Drops all registrations of `type`.
  void Clear(EventType type);

  /// Runs all registered listeners for the event, in registration order,
  /// skipping those whose condition fails. Stops at the first error.
  Status Dispatch(const Event& event);

  /// Number of listeners registered for `type`.
  size_t NumListeners(EventType type) const;

  /// Total events dispatched (whether or not any listener ran).
  int64_t events_dispatched() const { return events_dispatched_; }

  /// Renders the registry as a table like the paper's Table 1.
  std::string ToString() const;

 private:
  struct Registration {
    EventListener* listener;
    Condition condition;
  };

  std::vector<Registration> table_[kNumEventTypes];
  int64_t events_dispatched_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_REGISTRY_H_
