#include "exec/executor.h"

namespace pjoin {

BackgroundExecutor::BackgroundExecutor()
    : worker_([this] { WorkerLoop(); }) {}

BackgroundExecutor::~BackgroundExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BackgroundExecutor::Execute(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void BackgroundExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

int64_t BackgroundExecutor::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_executed_;
}

void BackgroundExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      ++tasks_executed_;
    }
    drained_cv_.notify_all();
  }
}

}  // namespace pjoin
