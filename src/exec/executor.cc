#include "exec/executor.h"

#include "common/mutex.h"

namespace pjoin {

BackgroundExecutor::BackgroundExecutor()
    : worker_([this] { WorkerLoop(); }) {}

BackgroundExecutor::~BackgroundExecutor() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

void BackgroundExecutor::Execute(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void BackgroundExecutor::Drain() {
  MutexLock lock(mu_);
  while (!DrainedLocked()) drained_cv_.Wait(mu_);
}

int64_t BackgroundExecutor::tasks_executed() const {
  MutexLock lock(mu_);
  return tasks_executed_;
}

void BackgroundExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      MutexLock lock(mu_);
      busy_ = false;
      ++tasks_executed_;
    }
    drained_cv_.NotifyAll();
  }
}

}  // namespace pjoin
