#include "exec/registry.h"

#include <sstream>

#include "common/macros.h"

namespace pjoin {

void EventRegistry::Register(EventType type, EventListener* listener,
                             Condition condition) {
  PJOIN_DCHECK(listener != nullptr);
  table_[static_cast<int>(type)].push_back(
      Registration{listener, std::move(condition)});
}

void EventRegistry::Unregister(EventType type, const EventListener* listener) {
  auto& regs = table_[static_cast<int>(type)];
  std::erase_if(regs, [listener](const Registration& r) {
    return r.listener == listener;
  });
}

void EventRegistry::Clear(EventType type) {
  table_[static_cast<int>(type)].clear();
}

Status EventRegistry::Dispatch(const Event& event) {
  ++events_dispatched_;
  for (auto& reg : table_[static_cast<int>(event.type)]) {
    if (reg.condition && !reg.condition(event)) continue;
    PJOIN_RETURN_NOT_OK(reg.listener->HandleEvent(event));
  }
  return Status::OK();
}

size_t EventRegistry::NumListeners(EventType type) const {
  return table_[static_cast<int>(type)].size();
}

std::string EventRegistry::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < kNumEventTypes; ++i) {
    if (table_[i].empty()) continue;
    os << EventTypeName(static_cast<EventType>(i)) << " -> ";
    for (size_t j = 0; j < table_[i].size(); ++j) {
      if (j > 0) os << ", ";
      os << table_[i][j].listener->name();
      if (table_[i][j].condition) os << " [cond]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pjoin
