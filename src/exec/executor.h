// Task executors. The event framework can run components inline (the
// deterministic default) or hand them to a background worker thread, the
// "second thread" of the paper's framework (§3.6).

#ifndef PJOIN_EXEC_EXECUTOR_H_
#define PJOIN_EXEC_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/macros.h"

namespace pjoin {

class Executor {
 public:
  virtual ~Executor() = default;
  /// Schedules `task` for execution.
  virtual void Execute(std::function<void()> task) = 0;
  /// Blocks until all scheduled tasks have finished.
  virtual void Drain() = 0;
};

/// Runs tasks inline on the calling thread.
class SerialExecutor : public Executor {
 public:
  void Execute(std::function<void()> task) override { task(); }
  void Drain() override {}
};

/// Runs tasks on one background worker thread, in submission order.
class BackgroundExecutor : public Executor {
 public:
  BackgroundExecutor();
  ~BackgroundExecutor() override;
  PJOIN_DISALLOW_COPY_AND_MOVE(BackgroundExecutor);

  void Execute(std::function<void()> task) override;
  void Drain() override;

  int64_t tasks_executed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  bool busy_ = false;
  int64_t tasks_executed_ = 0;
  std::thread worker_;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_EXECUTOR_H_
