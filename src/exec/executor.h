// Task executors. The event framework can run components inline (the
// deterministic default) or hand them to a background worker thread, the
// "second thread" of the paper's framework (§3.6).

#ifndef PJOIN_EXEC_EXECUTOR_H_
#define PJOIN_EXEC_EXECUTOR_H_

#include <deque>
#include <functional>
#include <thread>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pjoin {

class Executor {
 public:
  virtual ~Executor() = default;
  /// Schedules `task` for execution.
  virtual void Execute(std::function<void()> task) = 0;
  /// Blocks until all scheduled tasks have finished.
  virtual void Drain() = 0;
};

/// Runs tasks inline on the calling thread.
class SerialExecutor : public Executor {
 public:
  void Execute(std::function<void()> task) override { task(); }
  void Drain() override {}
};

/// Runs tasks on one background worker thread, in submission order.
class BackgroundExecutor : public Executor {
 public:
  BackgroundExecutor();
  ~BackgroundExecutor() override;
  PJOIN_DISALLOW_COPY_AND_MOVE(BackgroundExecutor);

  void Execute(std::function<void()> task) override EXCLUDES(mu_);
  void Drain() override EXCLUDES(mu_);

  [[nodiscard]] int64_t tasks_executed() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// True once every scheduled task has finished.
  [[nodiscard]] bool DrainedLocked() const REQUIRES(mu_) {
    return queue_.empty() && !busy_;
  }

  mutable Mutex mu_;
  CondVar cv_;
  CondVar drained_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool busy_ GUARDED_BY(mu_) = false;
  int64_t tasks_executed_ GUARDED_BY(mu_) = 0;
  std::thread worker_;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_EXECUTOR_H_
