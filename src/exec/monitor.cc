#include "exec/monitor.h"

#include "common/macros.h"

namespace pjoin {

Monitor::Monitor(RuntimeParams params, EventRegistry* registry,
                 const Clock* clock)
    : params_(params), registry_(registry), clock_(clock) {
  PJOIN_DCHECK(registry != nullptr);
  PJOIN_DCHECK(clock != nullptr);
}

Event Monitor::MakeEvent(EventType type, int stream) const {
  return Event{type, clock_->NowMicros(), stream, {}};
}

Status Monitor::OnPunctuationArrived(int stream) {
  PJOIN_DCHECK(stream == 0 || stream == 1);
  ++puncts_since_purge_[stream];
  ++puncts_since_propagation_;
  const int64_t total = puncts_since_purge_[0] + puncts_since_purge_[1];
  if (params_.purge_threshold > 0 && total >= params_.purge_threshold) {
    PJOIN_RETURN_NOT_OK(
        registry_->Dispatch(MakeEvent(EventType::kPurgeThresholdReach,
                                      stream)));
  }
  if (params_.propagate_count_threshold > 0 &&
      puncts_since_propagation_ >= params_.propagate_count_threshold) {
    PJOIN_RETURN_NOT_OK(
        registry_->Dispatch(MakeEvent(EventType::kPropagateCountReach)));
  }
  return Status::OK();
}

Status Monitor::OnStateSizeChanged(int64_t in_memory_tuples,
                                   int64_t in_memory_bytes) {
  const bool over_bytes = params_.memory_threshold_bytes > 0 &&
                          in_memory_bytes >= params_.memory_threshold_bytes;
  if (over_bytes || in_memory_tuples >= params_.memory_threshold_tuples) {
    // Raise once per crossing; re-arm when the state shrinks below the
    // threshold (after relocation or purge).
    if (!state_full_raised_) {
      state_full_raised_ = true;
      PJOIN_RETURN_NOT_OK(
          registry_->Dispatch(MakeEvent(EventType::kStateFull)));
    }
  } else {
    state_full_raised_ = false;
  }
  return Status::OK();
}

Status Monitor::OnStreamsEmpty(int64_t disk_resident_tuples) {
  PJOIN_RETURN_NOT_OK(registry_->Dispatch(MakeEvent(EventType::kStreamEmpty)));
  if (disk_resident_tuples >= params_.disk_join_activation_threshold) {
    PJOIN_RETURN_NOT_OK(
        registry_->Dispatch(MakeEvent(EventType::kDiskJoinActivate)));
  }
  return Status::OK();
}

Status Monitor::RequestPropagation() {
  return registry_->Dispatch(MakeEvent(EventType::kPropagateRequest));
}

Status Monitor::Tick() {
  if (params_.propagate_time_threshold > 0 &&
      clock_->NowMicros() - last_propagation_time_ >=
          params_.propagate_time_threshold) {
    PJOIN_RETURN_NOT_OK(
        registry_->Dispatch(MakeEvent(EventType::kPropagateTimeExpire)));
  }
  return Status::OK();
}

void Monitor::OnPurgeRan() {
  puncts_since_purge_[0] = 0;
  puncts_since_purge_[1] = 0;
}

void Monitor::OnPropagationRan() {
  puncts_since_propagation_ = 0;
  last_propagation_time_ = clock_->NowMicros();
}

int64_t Monitor::puncts_since_purge(int stream) const {
  PJOIN_DCHECK(stream == 0 || stream == 1);
  return puncts_since_purge_[stream];
}

}  // namespace pjoin
