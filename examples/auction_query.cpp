// The paper's running example (Fig 1): an online auction.
//
//   SELECT O.item_id, SUM(B.increase)
//   FROM   Open O JOIN Bid B ON O.item_id = B.item_id
//   GROUP BY O.item_id
//
// The Open stream carries one tuple per item plus a derived key-uniqueness
// punctuation; the Bid stream punctuates an item when its auction closes.
// PJoin purges state as auctions close and propagates punctuations so the
// group-by can emit each item's total the moment it is final — a blocking
// operator producing streaming output.

#include <cstdio>

#include "gen/auction.h"
#include "join/pjoin.h"
#include "ops/groupby.h"
#include "ops/pipeline.h"
#include "ops/sink.h"

using namespace pjoin;

int main(int argc, char** argv) {
  AuctionSpec spec;
  spec.num_bids = argc > 1 ? std::atoll(argv[1]) : 20000;
  spec.open_window = 20;
  spec.close_mean_interarrival_bids = 40;
  AuctionStreams streams = GenerateAuction(spec, /*seed=*/2004);
  std::printf("generated %lld bids over %lld items\n",
              static_cast<long long>(spec.num_bids),
              static_cast<long long>(streams.open.size() / 2));

  JoinOptions jopts;
  jopts.runtime.purge_threshold = 1;            // eager purge
  jopts.runtime.propagate_count_threshold = 2;  // propagate per punct pair
  PJoin join(streams.open_schema, streams.bid_schema, jopts);

  // Group the join output by item_id; field 3 (the bid-side item_id) equals
  // field 0 by the equi-join, so punctuations on either close the group.
  auto increase = join.output_schema()->IndexOf("increase");
  GroupBy groupby(join.output_schema(), 0,
                  {{AggKind::kSum, increase.value(), "sum_increase"},
                   {AggKind::kCount, 0, "num_bids"}},
                  /*group_aliases=*/{3});
  CollectorSink sink;
  groupby.set_downstream(&sink);

  JoinPipeline pipeline(&join, &groupby);
  Status st = pipeline.Run(streams.open, streams.bid);
  if (!st.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\nfirst five finished items:\n");
  for (size_t i = 0; i < sink.tuples().size() && i < 5; ++i) {
    std::printf("  %s\n", sink.tuples()[i].ToString().c_str());
  }
  std::printf("...\n");
  std::printf("items finished:            %lld\n",
              static_cast<long long>(sink.tuples().size()));
  std::printf("closed early by punct:     %lld\n",
              static_cast<long long>(
                  groupby.counters().Get("groups_closed_by_punct")));
  std::printf("join results:              %lld\n",
              static_cast<long long>(join.results_emitted()));
  std::printf("punctuations propagated:   %lld\n",
              static_cast<long long>(join.puncts_emitted()));
  std::printf("join state at end:         %lld tuples\n",
              static_cast<long long>(join.total_state_tuples()));
  std::printf("\nevent-listener registry (paper Table 1):\n%s",
              join.registry().ToString().c_str());
  return 0;
}
