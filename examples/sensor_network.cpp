// Sensor-network monitoring (one of the stream applications motivating the
// paper): correlate temperature and humidity readings of the same sensor
// that occur within a two-second window, using the sliding-window PJoin
// extension (§6).
//
// Sensors are decommissioned over time; the fleet controller embeds a
// punctuation into both streams when that happens. The windowed join then
// (a) purges the sensor's readings *before* their window expires and
// (b) propagates the punctuation early, so downstream per-sensor
// aggregation can finalize immediately.

#include <cstdio>

#include "common/rng.h"
#include "window/window_pjoin.h"

using namespace pjoin;

namespace {

struct SensorStreams {
  SchemaPtr temp_schema;
  SchemaPtr hum_schema;
  std::vector<StreamElement> temp;
  std::vector<StreamElement> hum;
};

SensorStreams GenerateFleet(int num_sensors, int readings_per_sensor,
                            uint64_t seed) {
  SensorStreams out;
  out.temp_schema = Schema::Make(
      {{"sensor_id", ValueType::kInt64}, {"celsius", ValueType::kFloat64}});
  out.hum_schema = Schema::Make(
      {{"sensor_id", ValueType::kInt64}, {"rel_hum", ValueType::kFloat64}});

  Rng rng(seed);
  TimeMicros now = 0;
  int64_t seq_t = 0;
  int64_t seq_h = 0;
  // Sensors report round-robin; sensor s is decommissioned after its quota,
  // which staggers the punctuations through the run.
  std::vector<int> remaining(static_cast<size_t>(num_sensors),
                             readings_per_sensor);
  int live = num_sensors;
  while (live > 0) {
    for (int s = 0; s < num_sensors; ++s) {
      auto& left = remaining[static_cast<size_t>(s)];
      if (left == 0) continue;
      now += 1000 + static_cast<TimeMicros>(rng.NextBounded(2000));
      out.temp.push_back(StreamElement::MakeTuple(
          Tuple(out.temp_schema,
                {Value(int64_t{s}), Value(15.0 + 10.0 * rng.NextDouble())}),
          now, seq_t++));
      if (rng.NextBool(0.8)) {  // humidity reports slightly less often
        out.hum.push_back(StreamElement::MakeTuple(
            Tuple(out.hum_schema,
                  {Value(int64_t{s}), Value(100.0 * rng.NextDouble())}),
            now + 200, seq_h++));
      }
      if (--left == 0) {
        // Decommissioned: both streams promise no more data for sensor s.
        Punctuation p = Punctuation::ForAttribute(
            2, 0, Pattern::Constant(Value(int64_t{s})));
        out.temp.push_back(StreamElement::MakePunctuation(p, now, seq_t++));
        out.hum.push_back(StreamElement::MakePunctuation(p, now, seq_h++));
        --live;
      }
    }
  }
  out.temp.push_back(StreamElement::MakeEndOfStream(now, seq_t++));
  out.hum.push_back(StreamElement::MakeEndOfStream(now, seq_h++));
  return out;
}

}  // namespace

int main() {
  SensorStreams fleet = GenerateFleet(/*num_sensors=*/25,
                                      /*readings_per_sensor=*/400,
                                      /*seed=*/7);

  WindowJoinOptions options;
  options.window_micros = 2 * kMicrosPerSecond;
  options.exploit_punctuations = true;
  WindowPJoin join(fleet.temp_schema, fleet.hum_schema, options);

  int64_t correlated = 0;
  join.set_result_callback([&correlated](const Tuple&) { ++correlated; });
  int64_t sensors_finalized = 0;
  join.set_punct_callback(
      [&sensors_finalized](const Punctuation&) { ++sensors_finalized; });

  // Drive both streams in global arrival order.
  size_t it = 0;
  size_t ih = 0;
  while (it < fleet.temp.size() || ih < fleet.hum.size()) {
    const bool take_temp =
        ih >= fleet.hum.size() ||
        (it < fleet.temp.size() &&
         fleet.temp[it].arrival() <= fleet.hum[ih].arrival());
    Status st = take_temp ? join.OnElement(0, fleet.temp[it++])
                          : join.OnElement(1, fleet.hum[ih++]);
    if (!st.ok()) {
      std::fprintf(stderr, "join failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf("correlated readings:        %lld\n",
              static_cast<long long>(correlated));
  std::printf("sensor-done puncts out:     %lld\n",
              static_cast<long long>(sensors_finalized));
  std::printf("state at end:               %lld tuples\n",
              static_cast<long long>(join.state_tuples()));
  std::printf("expired by window:          %lld\n",
              static_cast<long long>(
                  join.counters().Get("window_expired")));
  std::printf("purged early by puncts:     %lld\n",
              static_cast<long long>(join.counters().Get("punct_purged")));
  std::printf("dropped on the fly:         %lld\n",
              static_cast<long long>(join.counters().Get("otf_drops")));
  return 0;
}
