// Tuning playbook: how to configure and re-tune PJoin at runtime.
//
// Walks through the knobs of the event-driven framework (§3.6):
//   1. purge threshold (eager vs lazy purge),
//   2. memory threshold (state relocation to the spill store),
//   3. propagation mode (push by count/time, pull on request),
//   4. live re-tuning through Monitor::params(),
// and prints the event-listener registry before and after rewiring.

#include <cstdio>

#include "common/clock.h"
#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "ops/pipeline.h"

using namespace pjoin;

namespace {

GeneratedStreams MakeStreams(int64_t n) {
  DomainSpec d;
  d.window_size = 20;
  StreamSpec spec;
  spec.num_tuples = n;
  spec.punct_mean_interarrival_tuples = 10;
  return GenerateStreams(d, spec, spec, 99);
}

void Report(const char* label, const PJoin& join, TimeMicros wall) {
  std::printf("%-28s wall=%8.1f ms  state=%6lld  purge_runs=%5lld  "
              "purge_scanned=%9lld\n",
              label, wall / 1e3,
              static_cast<long long>(join.total_state_tuples()),
              static_cast<long long>(join.counters().Get("purge_runs")),
              static_cast<long long>(join.counters().Get("purge_scanned")));
}

TimeMicros RunOnce(PJoin* join, const GeneratedStreams& g) {
  Stopwatch watch;
  JoinPipeline pipe(join, nullptr);
  Status st = pipe.Run(g.a, g.b);
  PJOIN_DCHECK(st.ok());
  return watch.ElapsedMicros();
}

}  // namespace

int main() {
  GeneratedStreams g = MakeStreams(20000);

  std::printf("--- 1. eager purge (purge_threshold = 1) ---\n");
  {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    TimeMicros wall = RunOnce(&join, g);
    Report("eager", join, wall);
  }

  std::printf("\n--- 2. lazy purge (purge_threshold = 100) ---\n");
  {
    JoinOptions opts;
    opts.runtime.purge_threshold = 100;
    PJoin join(g.schema_a, g.schema_b, opts);
    TimeMicros wall = RunOnce(&join, g);
    Report("lazy-100", join, wall);
  }

  std::printf("\n--- 3. tight memory budget (spill to simulated disk) ---\n");
  {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    opts.runtime.memory_threshold_tuples = 200;
    PJoin join(g.schema_a, g.schema_b, opts);
    TimeMicros wall = RunOnce(&join, g);
    Report("eager, mem<=200", join, wall);
    std::printf("    spill io: %s\n",
                join.state(0).io_stats().ToString().c_str());
  }

  std::printf("\n--- 4. live re-tuning mid-stream ---\n");
  {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    std::printf("registry before:\n%s", join.registry().ToString().c_str());
    // Feed the first half eagerly…
    size_t half_a = g.a.size() / 2;
    size_t half_b = g.b.size() / 2;
    for (size_t i = 0; i < half_a; ++i) {
      PJOIN_DCHECK(join.OnElement(0, g.a[i]).ok());
    }
    for (size_t i = 0; i < half_b; ++i) {
      PJOIN_DCHECK(join.OnElement(1, g.b[i]).ok());
    }
    const int64_t purges_first_half = join.counters().Get("purge_runs");
    // …then switch to lazy purge at runtime: thresholds live in the
    // monitor and take effect immediately.
    join.monitor().params().purge_threshold = 50;
    for (size_t i = half_a; i < g.a.size(); ++i) {
      PJOIN_DCHECK(join.OnElement(0, g.a[i]).ok());
    }
    for (size_t i = half_b; i < g.b.size(); ++i) {
      PJOIN_DCHECK(join.OnElement(1, g.b[i]).ok());
    }
    std::printf("purge runs: first half (eager) = %lld, "
                "second half (lazy-50) = %lld\n",
                static_cast<long long>(purges_first_half),
                static_cast<long long>(join.counters().Get("purge_runs") -
                                       purges_first_half));
  }

  std::printf("\n--- 5. pull-mode propagation ---\n");
  {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    opts.propagate_on_finish = false;  // only propagate when asked
    PJoin join(g.schema_a, g.schema_b, opts);
    int64_t puncts = 0;
    join.set_punct_callback([&puncts](const Punctuation&) { ++puncts; });
    JoinPipeline pipe(&join, nullptr);
    PJOIN_DCHECK(pipe.Run(g.a, g.b).ok());
    std::printf("propagated before request: %lld\n",
                static_cast<long long>(puncts));
    PJOIN_DCHECK(join.RequestPropagation().ok());  // downstream pulls
    std::printf("propagated after request:  %lld\n",
                static_cast<long long>(puncts));
  }
  return 0;
}
