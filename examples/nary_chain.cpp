// N-ary PJoin (§6): a three-stream order-fulfilment pipeline joined on
// order_id — orders, payments, shipments. A result appears when all three
// facts about an order are known; each system punctuates an order when it
// will say nothing more about it, which purges the other two states and
// lets the join announce "order fully processed" punctuations downstream.

#include <cstdio>

#include "common/rng.h"
#include "nary/nary_pjoin.h"

using namespace pjoin;

int main() {
  SchemaPtr orders = Schema::Make(
      {{"order_id", ValueType::kInt64}, {"amount", ValueType::kInt64}});
  SchemaPtr payments = Schema::Make(
      {{"order_id", ValueType::kInt64}, {"method", ValueType::kInt64}});
  SchemaPtr shipments = Schema::Make(
      {{"order_id", ValueType::kInt64}, {"carrier", ValueType::kInt64}});

  NaryJoinOptions options;
  options.key_indexes = {0, 0, 0};
  NaryPJoin join({orders, payments, shipments}, options);

  int64_t fulfilled = 0;
  join.set_result_callback([&fulfilled](const Tuple& t) {
    if (++fulfilled <= 3) {
      std::printf("fulfilled: %s\n", t.ToString().c_str());
    }
  });
  int64_t closed = 0;
  join.set_punct_callback([&closed](const Punctuation&) { ++closed; });

  // Orders move through the three systems with some jitter; every system
  // punctuates an order once it is done with it.
  Rng rng(11);
  const int64_t kOrders = 5000;
  TimeMicros now = 0;
  std::vector<SchemaPtr> schemas = {orders, payments, shipments};
  for (int64_t id = 0; id < kOrders; ++id) {
    for (int stream = 0; stream < 3; ++stream) {
      now += 1 + static_cast<TimeMicros>(rng.NextBounded(100));
      Tuple t(schemas[static_cast<size_t>(stream)],
              {Value(id), Value(static_cast<int64_t>(rng.NextBounded(10)))});
      Status st = join.OnElement(
          stream, StreamElement::MakeTuple(std::move(t), now));
      PJOIN_DCHECK(st.ok());
      // This system is done with the order: punctuate it.
      st = join.OnElement(
          stream,
          StreamElement::MakePunctuation(
              Punctuation::ForAttribute(2, 0,
                                        Pattern::Constant(Value(id))),
              now));
      PJOIN_DCHECK(st.ok());
    }
  }
  for (int stream = 0; stream < 3; ++stream) {
    PJOIN_DCHECK(
        join.OnElement(stream, StreamElement::MakeEndOfStream(now)).ok());
  }

  std::printf("...\n");
  std::printf("orders fulfilled:           %lld\n",
              static_cast<long long>(fulfilled));
  std::printf("orders closed (puncts out): %lld\n",
              static_cast<long long>(closed));
  std::printf("state at end:               %lld tuples\n",
              static_cast<long long>(join.state_tuples()));
  std::printf("counters: %s\n", join.counters().ToString().c_str());
  return 0;
}
