// Quickstart: the smallest complete PJoin program.
//
// Two hand-built punctuated streams are joined on "key"; the example prints
// every result tuple, every propagated punctuation, and the operator's
// counters. Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "join/pjoin.h"
#include "stream/element.h"

using namespace pjoin;

int main() {
  // 1. Schemas: left = orders(key, qty), right = shipments(key, weight).
  SchemaPtr orders = Schema::Make(
      {{"key", ValueType::kInt64}, {"qty", ValueType::kInt64}});
  SchemaPtr shipments = Schema::Make(
      {{"key", ValueType::kInt64}, {"weight", ValueType::kFloat64}});

  // 2. A PJoin with eager purge and per-punctuation propagation.
  JoinOptions options;
  options.runtime.purge_threshold = 1;            // eager purge
  options.runtime.propagate_count_threshold = 1;  // propagate per punct
  PJoin join(orders, shipments, options);

  join.set_result_callback([](const Tuple& t) {
    std::printf("result: %s\n", t.ToString().c_str());
  });
  join.set_punct_callback([](const Punctuation& p) {
    std::printf("punct out: %s\n", p.ToString().c_str());
  });

  // 3. Feed elements (side 0 = orders, side 1 = shipments). Punctuations
  // declare "no more tuples with this key will arrive on this stream".
  auto tup = [](const SchemaPtr& s, int64_t key, Value v,
                TimeMicros at) {
    return StreamElement::MakeTuple(Tuple(s, {Value(key), std::move(v)}), at);
  };
  auto punct = [](int64_t key, TimeMicros at) {
    return StreamElement::MakePunctuation(
        Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(key))), at);
  };

  Status st;
  st = join.OnElement(0, tup(orders, 1, Value(int64_t{10}), 1000));
  st = join.OnElement(1, tup(shipments, 1, Value(2.5), 2000));   // -> result
  st = join.OnElement(0, tup(orders, 2, Value(int64_t{20}), 3000));
  st = join.OnElement(1, tup(shipments, 1, Value(7.5), 4000));   // -> result
  // Shipments are done with key 1: the key-1 order is purged from state.
  st = join.OnElement(1, punct(1, 5000));
  // Orders are done with key 1 too: with both sides quiet and state drained,
  // the punctuation propagates to the output.
  st = join.OnElement(0, punct(1, 6000));
  st = join.OnElement(0, StreamElement::MakeEndOfStream(7000));
  st = join.OnElement(1, StreamElement::MakeEndOfStream(7000));
  if (!st.ok()) {
    std::fprintf(stderr, "join failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Inspect the operator.
  std::printf("\nresults emitted: %lld\n",
              static_cast<long long>(join.results_emitted()));
  std::printf("state tuples left: %lld (key-2 order still waiting)\n",
              static_cast<long long>(join.total_state_tuples()));
  std::printf("counters: %s\n", join.counters().ToString().c_str());
  return 0;
}
