#!/usr/bin/env python3
"""Perf-regression gate: diff fresh benchmark JSON against checked-in baselines.

Comparisons are machine-independent: each gated number is a dimensionless
ratio computed *within one file* (the parallel pipeline's speedup over the
same file's scan baseline; the indexed probe's advantage over the scan probe
in the same google-benchmark run), so a slower CI runner shifts both sides
of the ratio and the gate only fires on a genuine relative regression.

Kinds:
  par_scaling  BENCH_par_scaling.json (bench/par_scaling --out=...).
               Gates: (a) speedup_vs_scan_baseline of the parallel run at
               --shards shards must be within --tolerance of the baseline's;
               (b) the compound gate: within the fresh file,
               parallel_x{shards}_indexed must strictly beat BOTH
               indexed_1thread and parallel_x{shards}_scan — parallelism
               and the indexed probe must compound, not trade off; (c)
               every fresh run's oracle must pass. With identical configs
               the deterministic result counts must match exactly.
  micro_ops    google-benchmark JSON (bench/micro_ops --benchmark_out=...).
               Gate: the scan/indexed probe time ratio per bucket size must
               be within --tolerance of the baseline's ratio.
  skew_sweep   The skew_sweep section of BENCH_par_scaling.json (the zipf
               sweep comparing static sharding against the adaptive
               repartitioner). Gated on the *bottleneck share* (max shard's
               fraction of total results; 1/shards = balanced), which is
               deterministic and machine-independent — wall time cannot
               reward load balancing on a single-core runner. Gates: every
               point's oracle passes; no point's adaptive share is worse
               than static; at the highest skew the adaptive share strictly
               beats static AND the repartitioner actually engaged
               (migrations + hot keys > 0); at zipf 0 the adaptive wall
               time stays within the (generous) overhead ceiling.

--self-test checks the gate against itself: the checked-in baselines must
pass against themselves, and the doctored fixtures under
tools/bench_fixtures/ (a ~25% throughput regression at 4 shards, a
compound-only fixture whose parallel_x4_indexed run stays above the
throughput floor yet no longer beats indexed_1thread, and a skew fixture
whose adaptive run no longer beats static at the highest zipf point) plus
a synthetically slowed micro run must fail — each for its own reason.

Exit status: 0 pass, 1 regression or malformed input, 2 usage error.
"""

import argparse
import copy
import json
import os
import sys

DEFAULT_TOLERANCE = 0.15
FIXTURE_DIR = os.path.join("tools", "bench_fixtures")
PAR_BASELINE = "BENCH_par_scaling.json"
MICRO_BASELINE = "BENCH_micro_ops.json"

# Probe sizes gated in micro_ops mode. Size 10 is excluded: at tens of
# nanoseconds per probe the ratio is dominated by fixed overhead and noise.
MICRO_PROBE_SIZES = (100, 1000)

# Headroom on the bottleneck-share comparisons. Shares are deterministic
# for a given seed, but fresh runs use the runner's default config; the
# epsilon absorbs single-tuple rounding at points where adaptive and
# static are meant to tie, without masking a real imbalance regression
# (the s=1.6 gap this gate protects is ~0.09 share).
SKEW_SHARE_EPS = 0.02

# zipf_s at and above which the adaptive pipeline must be engaged (the
# sweep's "high skew" points).
SKEW_HIGH_S = 1.2


def fail(msg):
    print(f"bench_compare: FAIL: {msg}")
    return [msg]


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def runs_by_name(doc):
    return {r["name"]: r for r in doc.get("runs", [])}


def spill_efficiency(runs):
    """Spill-efficiency ratio: bytes spilled per byte purged early across
    the sweep's adaptive runs. Lower is better (more dead state reclaimed
    for free instead of written to disk)."""
    spilled = sum(r["bytes_spilled"] for r in runs if r["mode"] == "adaptive")
    purged = sum(r["bytes_early_purged"] for r in runs
                 if r["mode"] == "adaptive")
    return spilled / purged if purged > 0 else float("inf")


def compare_spill_sweep(baseline, fresh, tolerance):
    findings = []
    base_sweep = baseline.get("spill_sweep", {}).get("runs", [])
    fresh_sweep = fresh.get("spill_sweep", {}).get("runs", [])
    if not base_sweep and not fresh_sweep:
        return findings
    if base_sweep and not fresh_sweep:
        return fail("baseline has a spill_sweep section but fresh does not "
                    "(sweep disabled or bench regressed?)")

    for run in fresh_sweep:
        if not run.get("oracle_pass", False):
            findings += fail(
                f"spill_sweep {run['mode']}@{run['memcap']}: oracle failed")

    by_cap = {}
    for run in fresh_sweep:
        by_cap.setdefault(run["memcap"], {})[run["mode"]] = run
    for cap, modes in sorted(by_cap.items()):
        if "adaptive" not in modes or "global" not in modes:
            findings += fail(f"spill_sweep memcap {cap}: missing a mode "
                             f"(have {sorted(modes)})")
            continue
        adaptive, glob = modes["adaptive"], modes["global"]
        verdict = ("OK" if adaptive["bytes_spilled"] < glob["bytes_spilled"]
                   else "REGRESSION")
        print(f"  spill_sweep@{cap}: adaptive spilled "
              f"{adaptive['bytes_spilled']} bytes vs global "
              f"{glob['bytes_spilled']} (early-purged "
              f"{adaptive['bytes_early_purged']}) {verdict}")
        if adaptive["bytes_spilled"] >= glob["bytes_spilled"]:
            findings += fail(
                f"spill_sweep memcap {cap}: adaptive mode no longer spills "
                f"strictly fewer bytes than global-threshold "
                f"({adaptive['bytes_spilled']} >= {glob['bytes_spilled']})")
        if adaptive["bytes_early_purged"] <= 0:
            findings += fail(
                f"spill_sweep memcap {cap}: adaptive mode purged nothing "
                "early (punctuation-aware purge rung is dead)")

    if base_sweep:
        base_ratio = spill_efficiency(base_sweep)
        fresh_ratio = spill_efficiency(fresh_sweep)
        ceiling = base_ratio * (1.0 + tolerance)
        verdict = "OK" if fresh_ratio <= ceiling else "REGRESSION"
        print(f"  spill efficiency (bytes spilled / bytes early-purged): "
              f"{fresh_ratio:.3f} (baseline {base_ratio:.3f}, ceiling "
              f"{ceiling:.3f}) {verdict}")
        if fresh_ratio > ceiling:
            findings += fail(
                f"spill-efficiency ratio regressed >{tolerance:.0%}: "
                f"{fresh_ratio:.3f} > ceiling {ceiling:.3f} "
                f"(baseline {base_ratio:.3f})")
    return findings


def skew_points(doc):
    return {float(p["zipf_s"]): p
            for p in doc.get("skew_sweep", {}).get("points", [])}


def compare_skew_sweep(baseline, fresh, tolerance):
    """Gate the zipf skew sweep: adaptive repartitioning must beat static
    sharding where there is skew to exploit and cost ~nothing where there
    is none. All share comparisons are within the fresh file (static and
    adaptive runs share the machine), so the gate is speed-independent."""
    findings = []
    base_pts = skew_points(baseline)
    fresh_pts = skew_points(fresh)
    if not base_pts and not fresh_pts:
        return findings
    if not fresh_pts:
        return fail("baseline has a skew_sweep section but fresh does not "
                    "(sweep disabled or bench regressed?)")
    for s in sorted(set(base_pts) - set(fresh_pts)):
        findings += fail(f"skew_sweep: baseline point zipf_s={s:g} missing "
                         "from fresh file")

    for s, p in sorted(fresh_pts.items()):
        if not p.get("oracle_pass", False):
            findings += fail(f"skew_sweep s={s:g}: oracle failed "
                             "(adaptive results diverge from reference)")
        st = float(p["static_bottleneck_share"])
        ad = float(p["adaptive_bottleneck_share"])
        verdict = "OK" if ad <= st + SKEW_SHARE_EPS else "REGRESSION"
        print(f"  skew@s={s:g}: bottleneck share adaptive {ad:.3f} vs "
              f"static {st:.3f} (migr {p.get('migrations', 0)}, "
              f"hot {p.get('hot_keys', 0)}) {verdict}")
        if ad > st + SKEW_SHARE_EPS:
            findings += fail(
                f"skew_sweep s={s:g}: adaptive bottleneck share {ad:.3f} "
                f"worse than static {st:.3f} (+eps {SKEW_SHARE_EPS}) — "
                "repartitioning is hurting balance")

    # The highest-skew point is where adaptivity must pay off: strictly
    # better balance than static, achieved by actually doing something.
    top_s = max(fresh_pts)
    if top_s < SKEW_HIGH_S:
        findings += fail(f"skew_sweep: highest point zipf_s={top_s:g} is "
                         f"below the high-skew bar {SKEW_HIGH_S} (sweep "
                         "no longer exercises real skew)")
    else:
        p = fresh_pts[top_s]
        st = float(p["static_bottleneck_share"])
        ad = float(p["adaptive_bottleneck_share"])
        engaged = int(p.get("migrations", 0)) + int(p.get("hot_keys", 0))
        if ad >= st:
            findings += fail(
                f"skew_sweep s={top_s:g}: adaptive bottleneck share "
                f"{ad:.3f} no longer strictly beats static {st:.3f}")
        if engaged <= 0:
            findings += fail(
                f"skew_sweep s={top_s:g}: repartitioner never engaged "
                "(0 migrations, 0 hot keys) — detector or handoff is dead")

    # At zipf 0 adaptivity has nothing to exploit; its only legitimate
    # cost is detector overhead. Wall time IS machine-dependent, so the
    # ceiling is deliberately loose (>= 25%): this catches "the detector
    # got expensive on unskewed streams", not scheduling noise.
    if 0.0 in fresh_pts:
        p = fresh_pts[0.0]
        st_ms = float(p["static_wall_ms"])
        ad_ms = float(p["adaptive_wall_ms"])
        wall_tol = max(tolerance, 0.25)
        ceiling = st_ms * (1.0 + wall_tol)
        verdict = "OK" if ad_ms <= ceiling else "REGRESSION"
        print(f"  skew@s=0: adaptive wall {ad_ms:.1f}ms vs static "
              f"{st_ms:.1f}ms (ceiling {ceiling:.1f}ms) {verdict}")
        if ad_ms > ceiling:
            findings += fail(
                f"skew_sweep s=0: adaptive wall {ad_ms:.1f}ms exceeds "
                f"static {st_ms:.1f}ms +{wall_tol:.0%} — the repartitioner "
                "is no longer free on unskewed streams")
    else:
        findings += fail("skew_sweep: no zipf_s=0 point (the no-skew "
                         "overhead control is gone)")
    return findings


def gated_run_name(runs, shards):
    """Resolve the gated parallel run, tolerating the pre-spine naming.

    Newer files name the indexed parallel run parallel_x{N}_indexed and its
    scan-probe control parallel_x{N}_scan; older files had a single
    parallel_x{N} (which was the indexed one)."""
    for name in (f"parallel_x{shards}_indexed", f"parallel_x{shards}"):
        if name in runs:
            return name
    return None


def compare_compound(base_runs, fresh_runs, shards):
    """The compound gate: parallelism x indexed probe must multiply.

    Within the FRESH file alone (so machine speed cancels), the widest
    indexed parallel run must strictly beat both single-threaded indexed
    (parallelism adds something on top of the index) and the scan-probe
    parallel run (the index adds something on top of parallelism). Applies
    only when the baseline itself carries the parallel_x{N}_indexed run, so
    the gate never fires on pre-spine baselines."""
    findings = []
    indexed_name = f"parallel_x{shards}_indexed"
    if indexed_name not in base_runs:
        return findings
    if indexed_name not in fresh_runs:
        return fail(f"fresh file has no run '{indexed_name}' but the "
                    "baseline does (compound gate cannot be skipped)")

    comparators = {}
    if "indexed_1thread" in fresh_runs:
        comparators["indexed_1thread"] = float(
            fresh_runs["indexed_1thread"]["speedup_vs_scan_baseline"])
    for scan_name in (f"parallel_x{shards}_scan", f"parallel_x{shards}"):
        if scan_name in fresh_runs:
            comparators[scan_name] = float(
                fresh_runs[scan_name]["speedup_vs_scan_baseline"])
            break
    if not comparators:
        return fail("compound gate has nothing to compare against "
                    f"(no indexed_1thread or parallel_x{shards}_scan run)")

    compound = float(fresh_runs[indexed_name]["speedup_vs_scan_baseline"])
    bar_name, bar = max(comparators.items(), key=lambda kv: kv[1])
    verdict = "OK" if compound > bar else "REGRESSION"
    print(f"  compound: {indexed_name} {compound:.2f}x vs best "
          f"single-trick {bar_name} {bar:.2f}x {verdict}")
    if compound <= bar:
        findings += fail(
            f"compound gate: {indexed_name} ({compound:.2f}x) no longer "
            f"beats {bar_name} ({bar:.2f}x) — parallel and indexed have "
            "stopped compounding")
    return findings


def compare_par_scaling(baseline, fresh, tolerance, shards):
    findings = []
    base_runs = runs_by_name(baseline)
    fresh_runs = runs_by_name(fresh)
    if not fresh_runs:
        return fail("fresh par_scaling file has no runs")
    findings += compare_spill_sweep(baseline, fresh, tolerance)

    for name, run in sorted(fresh_runs.items()):
        if not run.get("oracle_pass", False):
            findings += fail(f"run '{name}': oracle failed (wrong results)")

    gate_name = gated_run_name(fresh_runs, shards)
    if gate_name is None:
        return findings + fail(
            f"fresh file has no run 'parallel_x{shards}_indexed' "
            f"(nor legacy 'parallel_x{shards}')")
    base_gate_name = gated_run_name(base_runs, shards)
    if base_gate_name is None:
        return findings + fail(
            f"baseline has no run 'parallel_x{shards}_indexed' "
            f"(nor legacy 'parallel_x{shards}')")

    base_speedup = float(base_runs[base_gate_name]["speedup_vs_scan_baseline"])
    fresh_speedup = float(fresh_runs[gate_name]["speedup_vs_scan_baseline"])
    floor = base_speedup * (1.0 - tolerance)
    verdict = "OK" if fresh_speedup >= floor else "REGRESSION"
    print(f"  {gate_name}: speedup_vs_scan {fresh_speedup:.2f}x "
          f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x) {verdict}")
    if fresh_speedup < floor:
        findings += fail(
            f"{gate_name} throughput regressed >"
            f"{tolerance:.0%}: speedup {fresh_speedup:.2f}x < floor "
            f"{floor:.2f}x (baseline {base_speedup:.2f}x)")

    findings += compare_compound(base_runs, fresh_runs, shards)

    # Same seeded config => the result multiset is deterministic.
    if baseline.get("config") == fresh.get("config"):
        for name in sorted(set(base_runs) & set(fresh_runs)):
            b, f = base_runs[name]["results"], fresh_runs[name]["results"]
            if b != f:
                findings += fail(
                    f"run '{name}': deterministic result count changed "
                    f"{b} -> {f} (same config/seed)")
    else:
        print("  configs differ: skipping deterministic result-count check")

    # Non-gated runs: report their drift for the log.
    for name in sorted(set(base_runs) & set(fresh_runs) - {gate_name}):
        b = float(base_runs[name]["speedup_vs_scan_baseline"])
        f = float(fresh_runs[name]["speedup_vs_scan_baseline"])
        print(f"  {name}: speedup_vs_scan {f:.2f}x (baseline {b:.2f}x) info")
    return findings


def micro_times(doc):
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") == "iteration":
            times[b["name"]] = float(b["real_time"])
    return times


def compare_micro_ops(baseline, fresh, tolerance):
    findings = []
    base = micro_times(baseline)
    fresh_t = micro_times(fresh)
    if not fresh_t:
        return fail("fresh micro_ops file has no benchmarks")
    for size in MICRO_PROBE_SIZES:
        scan, indexed = f"BM_ProbeScanBucket/{size}", \
            f"BM_ProbeIndexedBucket/{size}"
        missing = [n for n in (scan, indexed)
                   if n not in base or n not in fresh_t]
        if missing:
            findings += fail(f"benchmark(s) missing: {', '.join(missing)}")
            continue
        # How many times faster the indexed probe is than the scan probe,
        # in the same run on the same machine.
        base_ratio = base[scan] / base[indexed]
        fresh_ratio = fresh_t[scan] / fresh_t[indexed]
        floor = base_ratio * (1.0 - tolerance)
        verdict = "OK" if fresh_ratio >= floor else "REGRESSION"
        print(f"  probe/{size}: indexed advantage {fresh_ratio:.2f}x "
              f"(baseline {base_ratio:.2f}x, floor {floor:.2f}x) {verdict}")
        if fresh_ratio < floor:
            findings += fail(
                f"indexed probe advantage at size {size} regressed >"
                f"{tolerance:.0%}: {fresh_ratio:.2f}x < floor {floor:.2f}x")
    return findings


def run_compare(kind, baseline_path, fresh_path, tolerance, shards):
    try:
        baseline = load(baseline_path)
        fresh = load(fresh_path)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load input: {e}")
        return 1
    print(f"bench_compare: {kind}: {fresh_path} vs baseline {baseline_path} "
          f"(tolerance {tolerance:.0%})")
    if kind == "par_scaling":
        findings = compare_par_scaling(baseline, fresh, tolerance, shards)
    elif kind == "skew_sweep":
        findings = compare_skew_sweep(baseline, fresh, tolerance)
    else:
        findings = compare_micro_ops(baseline, fresh, tolerance)
    print(f"bench_compare: {len(findings)} finding(s)")
    return 1 if findings else 0


def self_test(root, tolerance, shards):
    failures = []

    def expect(label, got, want):
        status = "ok" if got == want else "FAIL"
        print(f"self-test [{status}] {label}")
        if got != want:
            failures.append(label)

    par_path = os.path.join(root, PAR_BASELINE)
    micro_path = os.path.join(root, MICRO_BASELINE)
    fixture_path = os.path.join(root, FIXTURE_DIR, "par_scaling_regressed.json")
    compound_path = os.path.join(root, FIXTURE_DIR,
                                 "par_scaling_compound_regressed.json")
    skew_path = os.path.join(root, FIXTURE_DIR,
                             "par_scaling_skew_regressed.json")

    expect("par_scaling baseline passes against itself",
           run_compare("par_scaling", par_path, par_path, tolerance, shards),
           0)
    expect("skew_sweep baseline passes against itself",
           run_compare("skew_sweep", par_path, par_path, tolerance, shards),
           0)
    expect("micro_ops baseline passes against itself",
           run_compare("micro_ops", micro_path, micro_path, tolerance,
                       shards), 0)
    expect("regressed par_scaling fixture fails the gate",
           run_compare("par_scaling", par_path, fixture_path, tolerance,
                       shards), 1)
    expect("compound-regressed par_scaling fixture fails the gate",
           run_compare("par_scaling", par_path, compound_path, tolerance,
                       shards), 1)
    expect("skew-regressed fixture fails the skew gate",
           run_compare("skew_sweep", par_path, skew_path, tolerance,
                       shards), 1)
    # Right reason: the skew fixture's doctoring is confined to the
    # skew_sweep section, so the plain par_scaling gate must still accept
    # it — only the skew gate can be what rejects it.
    expect("skew fixture still passes the plain par_scaling gate",
           run_compare("par_scaling", par_path, skew_path, tolerance,
                       shards), 0)

    # The compound fixture must fail for the right reason: its gated run
    # stays above the plain throughput floor, so only the compound check
    # can reject it.
    base_runs = runs_by_name(load(par_path))
    comp_runs = runs_by_name(load(compound_path))
    gate = f"parallel_x{shards}_indexed"
    floor = (float(base_runs[gate]["speedup_vs_scan_baseline"])
             * (1.0 - tolerance))
    expect("compound fixture stays above the plain throughput floor",
           float(comp_runs[gate]["speedup_vs_scan_baseline"]) >= floor, True)

    # Synthetic micro regression: slow the indexed probe 25%, shrinking its
    # advantage past any tolerance <= 20%.
    micro = load(micro_path)
    doctored = copy.deepcopy(micro)
    for b in doctored.get("benchmarks", []):
        if b["name"].startswith("BM_ProbeIndexedBucket/"):
            b["real_time"] *= 1.25
    doctored_path = os.path.join(root, FIXTURE_DIR,
                                 ".micro_ops_regressed.tmp.json")
    with open(doctored_path, "w", encoding="utf-8") as f:
        json.dump(doctored, f)
    try:
        expect("synthetically slowed micro_ops fails the gate",
               run_compare("micro_ops", micro_path, doctored_path, tolerance,
                           shards), 1)
    finally:
        os.remove(doctored_path)

    print(f"bench_compare self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind",
                        choices=["par_scaling", "micro_ops", "skew_sweep"],
                        help="schema of the compared files")
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument("--fresh", help="freshly measured JSON")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative ratio drop (default 0.15)")
    parser.add_argument("--shards", type=int, default=4,
                        help="parallel run gated in par_scaling mode")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate against the checked-in "
                             "baselines and the regression fixture")
    parser.add_argument("--root", default=".",
                        help="repository root for --self-test")
    args = parser.parse_args()

    if args.self_test:
        if not os.path.exists(os.path.join(args.root, PAR_BASELINE)):
            print(f"error: no {PAR_BASELINE} under {args.root}",
                  file=sys.stderr)
            return 2
        return self_test(args.root, args.tolerance, args.shards)
    if not (args.kind and args.baseline and args.fresh):
        parser.print_usage(sys.stderr)
        print("error: --kind, --baseline and --fresh are required "
              "(or --self-test)", file=sys.stderr)
        return 2
    return run_compare(args.kind, args.baseline, args.fresh, args.tolerance,
                       args.shards)


if __name__ == "__main__":
    sys.exit(main())
