// Lint fixture: direct socket syscalls. Must trigger raw-socket — network
// IO in src/ is confined to src/obs/http_server.cc (HttpServer), which owns
// fd lifetimes, timeouts and shutdown. Note std::bind and member .bind()
// below must NOT fire.
#include <functional>

struct FakeEndpoint {
  void bind(int) {}
};

inline int OpenListener(int port) {
  const int fd = ::socket(2, 1, 0);
  if (fd < 0) return -1;
  long addr[4] = {0, 0, 0, static_cast<long>(port)};
  if (bind(fd, addr, sizeof(addr)) != 0) return -1;
  const int conn = ::accept(fd, nullptr, nullptr);
  // Allowed lookalikes: the rule must not fire on any of these.
  FakeEndpoint ep;
  ep.bind(port);
  auto bound = std::bind([](int x) { return x; }, port);
  return conn >= 0 ? static_cast<int>(bound(0)) : -1;
}
