// Lint fixture: (void)-discard of a call result. Must trigger
// void-status-discard — for Status/Result the cast silently defeats
// [[nodiscard]], and for anything else a bare call needs no cast at all.
#include "common/status.h"

namespace fixture {

inline pjoin::Status Op() { return pjoin::Status::OK(); }

inline void Caller() {
  (void)Op();
}

}  // namespace fixture
