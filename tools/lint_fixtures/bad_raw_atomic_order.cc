// Lint fixture: an explicit memory-order argument on an atomic op. Must
// trigger raw-atomic-ordering — relaxed/acquire/release reasoning is
// confined to src/common/spsc_ring.h and src/obs/trace.*; everywhere else
// atomics use the seq_cst defaults so the code stays auditable.
#include <atomic>

namespace fixture {

inline long long ReadCounter(const std::atomic<long long>& c) {
  return c.load(std::memory_order_relaxed);
}

inline void Bump(std::atomic<long long>& c) {
  c.fetch_add(1, std::memory_order_release);
}

}  // namespace fixture
