// Lint fixture: a Mutex member with no GUARDED_BY user. Must trigger
// unguarded-mutex — a mutex that guards nothing is either dead or guarding
// members the thread-safety analysis cannot see.
#ifndef PJOIN_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_MUTEX_H_
#define PJOIN_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_MUTEX_H_

#include "common/mutex.h"

namespace fixture {

class Cache {
 private:
  mutable pjoin::Mutex mu_;
  int value_ = 0;
};

}  // namespace fixture

#endif  // PJOIN_TOOLS_LINT_FIXTURES_BAD_UNGUARDED_MUTEX_H_
