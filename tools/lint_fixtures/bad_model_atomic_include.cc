// Lint fixture: production code pulling in the model-checking atomics.
// mc::atomic only works under the virtual scheduler (mc::Explore); in a
// normal binary every operation aborts because no Execution is live. The
// supported seam is the atomics-policy template on SpscRing — production
// instantiates RawAtomicsPolicy, tests instantiate mc::ModelPolicy, and
// nothing outside tests/ and src/check/ ever names an mc:: type.
#include "check/model_atomic.h"

namespace pjoin {

inline int BrokenCounter() {
  mc::atomic<int> count{0};
  count.store(1, std::memory_order_release);
  return count.load(std::memory_order_acquire);
}

}  // namespace pjoin
