// Lint fixture: a raw std::mutex member. Must trigger raw-sync-primitive —
// raw standard lock types are invisible to Clang's -Wthread-safety analysis;
// pjoin::Mutex from common/mutex.h is mandatory.
#include <mutex>

namespace fixture {

struct Holder {
  std::mutex mu;
  int value = 0;
};

}  // namespace fixture
