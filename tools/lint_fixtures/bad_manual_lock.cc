// Lint fixture: manual Lock()/Unlock() calls. Must trigger manual-lock —
// locking is RAII-only (MutexLock); a manual Unlock is skipped by any early
// return or exception between the calls.
#include "common/mutex.h"

namespace fixture {

inline int Touch(pjoin::Mutex& mu, int v) {
  mu.Lock();
  const int out = v + 1;
  mu.Unlock();
  return out;
}

}  // namespace fixture
