// Lint fixture: wrong header-guard name. Must trigger header-guard — guards
// are PJOIN_<PATH>_H_ derived from the path under src/.
#ifndef SOME_UNRELATED_GUARD_H
#define SOME_UNRELATED_GUARD_H

namespace fixture {
inline int Answer() { return 42; }
}  // namespace fixture

#endif  // SOME_UNRELATED_GUARD_H
