// Lint fixture: follows every convention — the self-test asserts zero
// findings here (the positive control for the linter itself).
#ifndef PJOIN_FIXTURE_CLEAN_H_
#define PJOIN_FIXTURE_CLEAN_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void Add(int64_t d) EXCLUDES(mu_) {
    pjoin::MutexLock lock(mu_);
    value_ += d;
  }
  [[nodiscard]] int64_t Get() const EXCLUDES(mu_) {
    pjoin::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable pjoin::Mutex mu_;
  int64_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // PJOIN_FIXTURE_CLEAN_H_
