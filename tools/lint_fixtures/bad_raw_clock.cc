// Lint fixture: a direct monotonic-clock read. Must trigger raw-clock —
// src/ code reads time through common/clock.h (Clock / Stopwatch /
// SteadyDeadlineAfter); only the clock wrapper and the tracer may call
// std::chrono::steady_clock::now() themselves.
#include <chrono>

namespace fixture {

inline long long NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
