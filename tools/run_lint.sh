#!/usr/bin/env bash
# Runs the project lint (tools/lint_check.py): first the linter's own
# self-test against the fixture files, then the full repo scan. Mirrors the
# CI lint job; run locally before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== lint self-test =="
python3 tools/lint_check.py --self-test

echo "== repo lint =="
python3 tools/lint_check.py --root .
