// pjoin_cli: join two punctuated stream files from the command line.
//
// Usage:
//   pjoin_cli --left LEFT.stream --left-schema "key:int64,qty:int64"
//             --right RIGHT.stream --right-schema "key:int64,w:float64"
//             [--left-key 0] [--right-key 0]
//             [--algo pjoin|xjoin|shj]
//             [--purge-threshold N] [--memory-threshold N]
//             [--propagate-count N] [--threads]
//             [--out OUT.stream] [--stats]
//             [--serve-port PORT] [--serve-linger-ms MS]
//
// --serve-port starts the live introspection HTTP server (0 = ephemeral;
// the bound port is printed to stderr) exposing /metrics, /statusz and
// /tracez while the join runs; --serve-linger-ms keeps the process (and
// the endpoints) alive that long after the join finishes so a scraper can
// collect the final state, or until GET /quitquitquit.
//
// Stream file format (see src/io/text_format.h):
//   t <arrival_micros> <v1>,<v2>,...
//   p <arrival_micros> <pattern1>,<pattern2>,...
//
// Example:
//   $ cat left.stream
//   t 1000 1,10
//   t 2000 2,20
//   p 3000 1,*
//   $ pjoin_cli --left left.stream --left-schema key:int64,qty:int64
//               --right right.stream --right-schema key:int64,w:float64

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "io/text_format.h"
#include "obs/introspection.h"
#include "join/pjoin.h"
#include "join/shj.h"
#include "join/xjoin.h"
#include "ops/pipeline.h"
#include "ops/threaded_pipeline.h"

using namespace pjoin;

namespace {

struct Args {
  std::map<std::string, std::string> named;
  bool Has(const std::string& key) const { return named.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt = "") const {
    auto it = named.find(key);
    return it == named.end() ? dflt : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    auto it = named.find(key);
    return it == named.end() ? dflt : std::atoll(it->second.c_str());
  }
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "pjoin_cli: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return Fail("unexpected argument " + key);
    key = key.substr(2);
    if (key == "threads" || key == "stats") {
      args.named[key] = "1";
    } else if (i + 1 < argc) {
      args.named[key] = argv[++i];
    } else {
      return Fail("missing value for --" + key);
    }
  }
  for (const char* required :
       {"left", "right", "left-schema", "right-schema"}) {
    if (!args.Has(required)) {
      return Fail(std::string("--") + required +
                  " is required (see header of tools/pjoin_cli.cc)");
    }
  }

  auto left_schema = ParseSchemaSpec(args.Get("left-schema"));
  if (!left_schema.ok()) return Fail(left_schema.status().ToString());
  auto right_schema = ParseSchemaSpec(args.Get("right-schema"));
  if (!right_schema.ok()) return Fail(right_schema.status().ToString());

  auto left = ReadStreamFile(args.Get("left"), *left_schema);
  if (!left.ok()) return Fail(left.status().ToString());
  auto right = ReadStreamFile(args.Get("right"), *right_schema);
  if (!right.ok()) return Fail(right.status().ToString());

  JoinOptions options;
  options.left_key = static_cast<size_t>(args.GetInt("left-key", 0));
  options.right_key = static_cast<size_t>(args.GetInt("right-key", 0));
  options.runtime.purge_threshold = args.GetInt("purge-threshold", 1);
  if (args.Has("memory-threshold")) {
    options.runtime.memory_threshold_tuples =
        args.GetInt("memory-threshold", 0);
  }
  options.runtime.propagate_count_threshold =
      args.GetInt("propagate-count", 0);

  const std::string algo = args.Get("algo", "pjoin");
  std::unique_ptr<JoinOperator> join;
  if (algo == "pjoin") {
    join = std::make_unique<PJoin>(*left_schema, *right_schema, options);
  } else if (algo == "xjoin") {
    join = std::make_unique<XJoin>(*left_schema, *right_schema, options);
  } else if (algo == "shj") {
    join = std::make_unique<SymmetricHashJoin>(*left_schema, *right_schema,
                                               options);
  } else {
    return Fail("unknown --algo '" + algo + "' (pjoin|xjoin|shj)");
  }

  // Collect output as stream elements so it can be written back out.
  std::vector<StreamElement> output;
  int64_t seq = 0;
  join->set_result_callback([&](const Tuple& t) {
    output.push_back(StreamElement::MakeTuple(t, join->last_arrival(), seq++));
  });
  join->set_punct_callback([&](const Punctuation& p) {
    output.push_back(
        StreamElement::MakePunctuation(p, join->last_arrival(), seq++));
  });

  std::unique_ptr<obs::IntrospectionServer> server;
  if (args.Has("serve-port")) {
    server = std::make_unique<obs::IntrospectionServer>();
    const Status started =
        server->Start(static_cast<int>(args.GetInt("serve-port", 0)));
    if (!started.ok()) return Fail(started.ToString());
    std::fprintf(stderr, "serving introspection on http://127.0.0.1:%d\n",
                 server->port());
  }

  Status status;
  if (args.Has("threads")) {
    ThreadedJoinPipeline pipeline(join.get());
    status = pipeline.Run(*left, *right);
  } else {
    PipelineOptions popts;
    popts.stall_gap_micros = 8000;
    JoinPipeline pipeline(join.get(), nullptr, popts);
    status = pipeline.Run(*left, *right);
  }
  if (!status.ok()) return Fail(status.ToString());

  if (args.Has("out")) {
    Status w = WriteStreamFile(args.Get("out"), output);
    if (!w.ok()) return Fail(w.ToString());
  } else {
    std::fputs(FormatStreamText(output).c_str(), stdout);
  }

  if (args.Has("stats")) {
    std::fprintf(stderr, "algo:            %s\n", algo.c_str());
    std::fprintf(stderr, "output schema:   %s\n",
                 FormatSchemaSpec(*join->output_schema()).c_str());
    std::fprintf(stderr, "results:         %lld\n",
                 static_cast<long long>(join->results_emitted()));
    std::fprintf(stderr, "puncts out:      %lld\n",
                 static_cast<long long>(join->puncts_emitted()));
    std::fprintf(stderr, "state at end:    %lld tuples\n",
                 static_cast<long long>(join->total_state_tuples()));
    std::fprintf(stderr, "counters:        %s\n",
                 join->counters().ToString().c_str());
  }

  if (server != nullptr) {
    // Keep the endpoints up so a scraper can read the final metrics/state;
    // GET /quitquitquit ends the linger early.
    const int64_t linger_ms = args.GetInt("serve-linger-ms", 0);
    const Stopwatch linger;
    while (linger.ElapsedMicros() < linger_ms * 1000 &&
           !server->quit_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    server->Stop();
  }
  return 0;
}
