#!/usr/bin/env python3
"""Validator for Prometheus text exposition format 0.0.4 snapshots.

Used by the CI observability smoke step to check that /metrics output from
a live pipeline (bench/par_scaling --serve_port) is well-formed, and by
tests as a grammar oracle for obs/promtext.cc.

Checks:
  grammar     every non-comment line is `name{labels} value` or
              `name value`; names match [a-zA-Z_:][a-zA-Z0-9_:]*; label
              values are double-quoted with only \\" \\\\ \\n escapes;
              values parse as floats (inf/+Inf/NaN allowed).
  type-lines  `# TYPE name kind` appears at most once per name, with a
              known kind, before any sample of that name.
  histograms  for each histogram family and label set: `le` bounds strictly
              increase, cumulative bucket counts are non-decreasing, the
              `+Inf` bucket equals `name_count`, and `name_sum` is present.
  duplicates  no exact (name, labels) sample appears twice.

--require-histogram NAME may be repeated; each asserts that histogram NAME
exists with a nonzero _count for at least one label set (i.e. the live
pipeline actually recorded observations).

--require-nonzero NAME may be repeated; each asserts that NAME exists with a
nonzero value for at least one label set (used by CI to prove e.g. the spill
path actually ran during the live scrape). NAME may be a counter/gauge (the
sample value) or a histogram family (its _count).

--require-label NAME:KEY may be repeated; each asserts that metric NAME has
at least one sample carrying a non-empty KEY label (used by CI to prove e.g.
pjoin_build_info exposes git_sha and the frontier lag histogram is sharded).

--self-test runs the embedded good/bad fixtures through the validator and
asserts each bad fixture is rejected for the expected reason.

Exit status: 0 valid, 1 findings, 2 usage error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value   (exposition-format sample line)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$")
LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')
TYPE_RE = re.compile(
    r"^#\s*TYPE\s+(?P<name>\S+)\s+(?P<kind>\S+)\s*$")
KNOWN_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}
VALID_ESCAPES = {"\\", '"', "n"}


class Findings:
    def __init__(self):
        self.items = []

    def add(self, line_no, message):
        self.items.append((line_no, message))


def parse_value(text):
    """Exposition float: Go ParseFloat syntax plus +Inf/-Inf/NaN."""
    t = text.lower()
    if t in ("+inf", "inf"):
        return math.inf
    if t == "-inf":
        return -math.inf
    if t == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(raw, line_no, findings):
    """Returns a sorted (key, value) tuple, or None on grammar errors."""
    if raw is None or raw == "":
        return ()
    pairs = []
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            findings.add(line_no, f"malformed label at offset {pos}: "
                         f"{raw[pos:pos + 30]!r}")
            return None
        value = m.group("value")
        for esc in re.finditer(r"\\(.)", value):
            if esc.group(1) not in VALID_ESCAPES:
                findings.add(line_no,
                             f"invalid escape \\{esc.group(1)} in label "
                             f"value {value!r}")
                return None
        pairs.append((m.group("key"), value))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                findings.add(line_no, f"expected ',' between labels at "
                             f"offset {pos}")
                return None
            pos += 1
    return tuple(sorted(pairs))


def base_name(name):
    """Histogram/summary series name without its _bucket/_sum/_count
    suffix (unchanged if no suffix applies)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def validate(text):
    """Validates one exposition snapshot; returns (findings, histograms,
    scalars) where histograms maps name -> {labelset_without_le:
    count_value} and scalars maps each non-histogram sample name ->
    {labelset: value}."""
    findings = Findings()
    types = {}  # family name -> (kind, line_no)
    seen_samples = {}  # (name, labels) -> line_no
    sampled_names = {}  # family name of each sampled series -> first line
    # histogram family -> labels-without-le -> list of (le, cumulative count)
    buckets = {}
    sums = {}  # (family, labels) -> value
    counts = {}  # (family, labels) -> value
    scalars = {}  # sample name -> labels -> value (counters/gauges)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                name, kind = m.group("name"), m.group("kind")
                if not NAME_RE.match(name):
                    findings.add(line_no, f"invalid metric name {name!r} in "
                                 "TYPE line")
                if kind not in KNOWN_KINDS:
                    findings.add(line_no, f"unknown metric kind {kind!r}")
                if name in types:
                    findings.add(line_no, f"duplicate TYPE line for {name} "
                                 f"(first at line {types[name][1]})")
                elif name in sampled_names:
                    findings.add(line_no, f"TYPE line for {name} after its "
                                 f"first sample (line "
                                 f"{sampled_names[name]})")
                else:
                    types[name] = (kind, line_no)
            # Other comments (# HELP, freeform) are always legal.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            findings.add(line_no, f"unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels"), line_no, findings)
        if labels is None:
            continue
        value = parse_value(m.group("value"))
        if value is None:
            findings.add(line_no,
                         f"unparseable sample value {m.group('value')!r}")
            continue

        key = (name, labels)
        if key in seen_samples:
            findings.add(line_no, f"duplicate sample {name}{{...}} (first "
                         f"at line {seen_samples[key]})")
        seen_samples[key] = line_no

        family = base_name(name)
        family_kind = types.get(family, (None, 0))[0]
        sampled_names.setdefault(family, line_no)
        sampled_names.setdefault(name, line_no)

        if family_kind == "histogram":
            no_le = tuple(kv for kv in labels if kv[0] != "le")
            if name == family + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    findings.add(line_no, "histogram _bucket sample without "
                                 "an le label")
                    continue
                le_value = parse_value(le)
                if le_value is None:
                    findings.add(line_no, f"unparseable le bound {le!r}")
                    continue
                buckets.setdefault(family, {}).setdefault(no_le, []).append(
                    (le_value, value, line_no))
            elif name == family + "_sum":
                sums[(family, no_le)] = value
            elif name == family + "_count":
                counts[(family, no_le)] = value
        else:
            scalars.setdefault(name, {})[labels] = value

    # Histogram family invariants.
    for family, by_labels in buckets.items():
        for labels, rows in by_labels.items():
            label_str = ",".join(f"{k}={v}" for k, v in labels) or "(none)"
            prev_le, prev_count = -math.inf, -math.inf
            for le, count, line_no in rows:
                if le <= prev_le:
                    findings.add(line_no,
                                 f"{family}{{{label_str}}}: le bounds not "
                                 f"strictly increasing ({le} after "
                                 f"{prev_le})")
                if count < prev_count:
                    findings.add(line_no,
                                 f"{family}{{{label_str}}}: cumulative "
                                 f"bucket count decreased ({count} after "
                                 f"{prev_count})")
                prev_le, prev_count = le, count
            last_le, last_count, last_line = rows[-1]
            if not math.isinf(last_le):
                findings.add(last_line,
                             f"{family}{{{label_str}}}: missing +Inf bucket")
            else:
                total = counts.get((family, labels))
                if total is None:
                    findings.add(last_line, f"{family}{{{label_str}}}: no "
                                 f"{family}_count sample")
                elif total != last_count:
                    findings.add(last_line,
                                 f"{family}{{{label_str}}}: +Inf bucket "
                                 f"({last_count}) != _count ({total})")
            if (family, labels) not in sums:
                findings.add(last_line,
                             f"{family}{{{label_str}}}: no {family}_sum "
                             "sample")

    histograms = {
        family: {labels: counts.get((family, labels), 0.0)
                 for labels in by_labels}
        for family, by_labels in buckets.items()
    }
    return findings, histograms, scalars


def check_requirements(histograms, required, findings):
    for name in required:
        by_labels = histograms.get(name)
        if not by_labels:
            findings.add(0, f"required histogram {name} not found")
        elif all(count <= 0 for count in by_labels.values()):
            findings.add(0, f"required histogram {name} has zero _count "
                         "for every label set (no observations recorded)")


def check_nonzero(scalars, histograms, required, findings):
    for name in required:
        # A histogram family satisfies the requirement through its _count.
        by_labels = scalars.get(name) or histograms.get(name)
        if not by_labels:
            findings.add(0, f"required sample {name} not found")
        elif all(value == 0 for value in by_labels.values()):
            findings.add(0, f"required sample {name} is zero for every "
                         "label set (the instrumented path never ran)")


def check_labels(scalars, histograms, required, findings):
    """`required` is a list of NAME:KEY strings; each asserts that metric
    NAME (scalar or histogram family) has at least one sample whose KEY
    label is present and non-empty."""
    for spec in required:
        name, sep, key = spec.partition(":")
        if not sep or not name or not key:
            findings.add(0, f"malformed --require-label {spec!r} "
                         "(expected NAME:KEY)")
            continue
        by_labels = scalars.get(name) or histograms.get(name)
        if not by_labels:
            findings.add(0, f"required metric {name} not found")
        elif not any(dict(labels).get(key)
                     for labels in by_labels):
            findings.add(0, f"required metric {name} has no sample with a "
                         f"non-empty {key!r} label")


# ---------------------------------------------------------------------------
# Self-test fixtures: (name, text, expected_substring_or_None).
# None means the fixture must validate cleanly.

GOOD_SNAPSHOT = """\
# TYPE pjoin_results_total counter
pjoin_results_total{pipeline="parallel",shard="0"} 1234
pjoin_results_total{pipeline="parallel",shard="1"} 981
# TYPE pjoin_shard_queue_depth gauge
pjoin_shard_queue_depth{pipeline="parallel",shard="0"} 17
# TYPE pjoin_tuple_latency_seconds histogram
pjoin_tuple_latency_seconds_bucket{shard="0",le="0"} 0
pjoin_tuple_latency_seconds_bucket{shard="0",le="1e-06"} 3
pjoin_tuple_latency_seconds_bucket{shard="0",le="3e-06"} 9
pjoin_tuple_latency_seconds_bucket{shard="0",le="+Inf"} 12
pjoin_tuple_latency_seconds_sum{shard="0"} 0.00042
pjoin_tuple_latency_seconds_count{shard="0"} 12
# TYPE escapes gauge
escapes{path="C:\\\\dir\\"x\\n"} 1
"""

FIXTURES = [
    ("good", GOOD_SNAPSHOT, None),
    ("bad-grammar", "what even is this line\n", "unparseable sample line"),
    ("bad-name", "# TYPE 9bad counter\n", "invalid metric name"),
    ("bad-kind", "# TYPE x flummox\n", "unknown metric kind"),
    ("bad-value", "x{a=\"b\"} notanumber\n", "unparseable sample value"),
    ("bad-label", "x{a=b} 1\n", "malformed label"),
    ("bad-escape", 'x{a="\\t"} 1\n', "invalid escape"),
    ("bad-dup", "x 1\nx 1\n", "duplicate sample"),
    ("bad-type-after-sample",
     "x 1\n# TYPE x counter\n", "after its first sample"),
    ("bad-le-order",
     "# TYPE h histogram\n"
     'h_bucket{le="2"} 1\nh_bucket{le="1"} 2\nh_bucket{le="+Inf"} 2\n'
     "h_sum 3\nh_count 2\n", "not strictly increasing"),
    ("bad-cumulative",
     "# TYPE h histogram\n"
     'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
     "h_sum 3\nh_count 5\n", "bucket count decreased"),
    ("bad-inf-count",
     "# TYPE h histogram\n"
     'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_sum 3\nh_count 7\n',
     "!= _count"),
    ("bad-no-inf",
     "# TYPE h histogram\n"
     'h_bucket{le="1"} 1\nh_sum 3\nh_count 1\n', "missing +Inf bucket"),
    ("bad-no-sum",
     "# TYPE h histogram\n"
     'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 1\nh_count 1\n',
     "no h_sum sample"),
]


def run_self_test():
    failures = []
    for name, text, expected in FIXTURES:
        findings, _, _ = validate(text)
        messages = [msg for _, msg in findings.items]
        if expected is None:
            if messages:
                failures.append(f"{name}: expected clean, got {messages}")
        elif not any(expected in msg for msg in messages):
            failures.append(
                f"{name}: expected a finding containing {expected!r}, "
                f"got {messages}")
    # Requirement checks: zero-count and missing histograms must fail.
    findings, histograms, scalars = validate(GOOD_SNAPSHOT)
    check_requirements(histograms,
                       ["pjoin_tuple_latency_seconds"], findings)
    check_nonzero(scalars, histograms,
                  ["pjoin_results_total", "pjoin_tuple_latency_seconds"],
                  findings)
    check_labels(scalars, histograms,
                 ["pjoin_results_total:shard",
                  "pjoin_tuple_latency_seconds:shard"], findings)
    if findings.items:
        failures.append(f"require(good): unexpected {findings.items}")
    findings = Findings()
    check_requirements(histograms, ["absent_histogram"], findings)
    if not findings.items:
        failures.append("require(absent): expected a finding")
    zero = validate("# TYPE h histogram\n"
                    'h_bucket{le="+Inf"} 0\nh_sum 0\nh_count 0\n')
    findings = Findings()
    check_requirements(zero[1], ["h"], findings)
    if not any("zero _count" in msg for _, msg in findings.items):
        failures.append("require(zero): expected a zero-count finding")
    # Nonzero-sample checks: absent and all-zero counters must fail.
    findings = Findings()
    check_nonzero(scalars, histograms, ["absent_counter"], findings)
    if not any("not found" in msg for _, msg in findings.items):
        failures.append("nonzero(absent): expected a not-found finding")
    zero_counter = validate("# TYPE c counter\nc{shard=\"0\"} 0\nc 0\n")
    findings = Findings()
    check_nonzero(zero_counter[2], zero_counter[1], ["c"], findings)
    if not any("zero for every" in msg for _, msg in findings.items):
        failures.append("nonzero(zero): expected an all-zero finding")
    # A zero-_count histogram family must also fail the nonzero check.
    zero_hist = validate("# TYPE h histogram\n"
                         'h_bucket{le="+Inf"} 0\nh_sum 0\nh_count 0\n')
    findings = Findings()
    check_nonzero(zero_hist[2], zero_hist[1], ["h"], findings)
    if not any("zero for every" in msg for _, msg in findings.items):
        failures.append("nonzero(zero-hist): expected an all-zero finding")
    # Label checks: missing metric, missing key, malformed spec.
    findings = Findings()
    check_labels(scalars, histograms, ["absent_metric:shard"], findings)
    if not any("not found" in msg for _, msg in findings.items):
        failures.append("label(absent): expected a not-found finding")
    findings = Findings()
    check_labels(scalars, histograms,
                 ["pjoin_results_total:git_sha"], findings)
    if not any("non-empty 'git_sha' label" in msg
               for _, msg in findings.items):
        failures.append("label(missing-key): expected a missing-label "
                        "finding")
    findings = Findings()
    check_labels(scalars, histograms, ["no-colon"], findings)
    if not any("malformed" in msg for _, msg in findings.items):
        failures.append("label(malformed): expected a malformed-spec "
                        "finding")
    for f in failures:
        print(f"self-test FAIL: {f}")
    print(f"promtext self-test: {len(FIXTURES)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", nargs="?",
                        help="exposition file to validate ('-' = stdin)")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="assert histogram NAME exists with nonzero "
                        "_count (repeatable)")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="assert counter/gauge NAME (or histogram "
                        "NAME's _count) is nonzero for some label set "
                        "(repeatable)")
    parser.add_argument("--require-label", action="append", default=[],
                        metavar="NAME:KEY",
                        help="assert metric NAME has a sample with a "
                        "non-empty KEY label (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the embedded fixtures")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()
    if args.snapshot is None:
        parser.error("a snapshot file is required unless --self-test")
    if args.snapshot == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.snapshot, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2

    findings, histograms, scalars = validate(text)
    check_requirements(histograms, args.require_histogram, findings)
    check_nonzero(scalars, histograms, args.require_nonzero, findings)
    check_labels(scalars, histograms, args.require_label, findings)
    for line_no, message in findings.items:
        where = f"{args.snapshot}:{line_no}" if line_no else args.snapshot
        print(f"{where}: {message}")
    histo_total = sum(len(v) for v in histograms.values())
    print(f"promtext: {len(text.splitlines())} lines, "
          f"{len(histograms)} histogram families ({histo_total} series), "
          f"{len(findings.items)} finding(s)")
    return 1 if findings.items else 0


if __name__ == "__main__":
    sys.exit(main())
