#!/usr/bin/env python3
"""Project lint for concurrency and error-contract hygiene.

Checks that the conventions documented in src/common/thread_annotations.h
and src/common/status.h actually hold across the tree:

  raw-sync-primitive   std::mutex / std::lock_guard / std::unique_lock /
                       std::scoped_lock / std::condition_variable outside
                       src/common/mutex.h. The annotated pjoin::Mutex /
                       MutexLock / CondVar wrappers are mandatory — raw
                       standard types are invisible to Clang's
                       -Wthread-safety analysis.
  manual-lock          .Lock() / .Unlock() / .lock() / .unlock() calls
                       outside src/common/mutex.h. Locking is RAII-only
                       (MutexLock); a manual Unlock on an early return
                       path is exactly the bug the wrappers exist to
                       prevent.
  unguarded-mutex      a `Mutex foo_;` class member with no GUARDED_BY(foo_)
                       user in the same file. A mutex that guards nothing
                       is either dead or (worse) guarding members the
                       analysis cannot see.
  void-status-discard  a `(void)call(...)` expression discard. For Status /
                       Result this silently defeats [[nodiscard]]; for
                       everything else a bare call already compiles
                       cleanly, so the cast is never needed. `(void)name;`
                       (unused-parameter silencing) is allowed.
  header-guard         header guard must be PJOIN_<PATH>_H_ derived from
                       the path under src/ (e.g. src/join/pjoin.h =>
                       PJOIN_JOIN_PJOIN_H_).
  missing-include      files using GUARDED_BY/REQUIRES/... must include
                       common/thread_annotations.h; files using Mutex /
                       MutexLock / CondVar must include common/mutex.h.
  raw-clock            std::chrono::{steady,system,high_resolution}_clock
                       ::now() in src/ outside src/common/clock.* and the
                       tracer (src/obs/trace.*). Operators and drivers
                       read time through the Clock interface / Stopwatch /
                       SteadyDeadlineAfter so virtual-time benches and
                       deterministic tests stay honest.
  raw-socket           socket(2) / bind(2) / accept(2) calls in src/
                       outside src/obs/http_server.cc. All network IO goes
                       through HttpServer so fd lifetimes, timeouts and
                       shutdown live in one audited place (test clients
                       under tests/ are unaffected; the rule is src-only).
  raw-atomic-ordering  explicit std::memory_order_* arguments in src/
                       outside src/common/spsc_ring.h, src/obs/trace.*
                       and the model-checking harness (src/check/).
                       Relaxed/acquire/release reasoning is subtle enough
                       that it lives only in the audited lock-free
                       modules (the SPSC ring, the tracer's seqlock, and
                       the checker that verifies them); everywhere else
                       plain std::atomic ops (seq_cst) are the contract —
                       an ordering argument elsewhere is either premature
                       optimisation or a latent race.
  model-atomic-include the instrumented model-checking atomics
                       (check/model_atomic.h, mc::atomic / mc::Cell /
                       mc::ModelPolicy) referenced outside tests/ and
                       src/check/. They exist to *replace* std::atomic
                       under the virtual scheduler; in a production
                       binary they would abort at the first operation
                       (no Execution is live) — the policy template on
                       SpscRing is the supported seam, production code
                       never names mc:: types directly.

A line containing NOLINT (optionally NOLINT(<rule>)) is exempt from that
rule on that line. Fixture files under tools/lint_fixtures/ are excluded
from the repo scan; `--self-test` lints them instead and asserts each
expected finding fires.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

# Directories scanned in repo mode, relative to the repo root.
SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
FIXTURE_DIR = os.path.join("tools", "lint_fixtures")
# The wrapper layer itself is the one place raw primitives and manual
# lock calls are legitimate.
WRAPPER_HEADER = os.path.join("src", "common", "mutex.h")
# The only src/ files allowed to read the raw monotonic clock: the Clock
# wrapper layer and the tracer's timestamp source (docs/OBSERVABILITY.md).
RAW_CLOCK_EXEMPT = (
    "src/common/clock.h",
    "src/common/clock.cc",
    "src/obs/trace.h",
    "src/obs/trace.cc",
)
# The only src/ file allowed to make raw socket syscalls (the HTTP server
# that backs the live introspection endpoints).
RAW_SOCKET_EXEMPT = ("src/obs/http_server.cc",)
# The only src/ files allowed to pass explicit std::memory_order arguments:
# the SPSC ring (the parallel pipeline's lock-free transport) and the
# tracer's seqlock-style ring. Their orderings are documented invariants;
# everywhere else atomics use the seq_cst defaults.
RAW_ATOMIC_EXEMPT = (
    "src/common/spsc_ring.h",
    "src/obs/trace.h",
    "src/obs/trace.cc",
    # The model-checking harness interprets memory orders; it is the
    # checker, not a user of the convention.
    "src/check/model_atomic.h",
    "src/check/scheduler.h",
    "src/check/scheduler.cc",
)
# The model-checking atomics may only be named from the harness itself and
# from tests; see the model-atomic-include rule in the module docstring.
MODEL_ATOMIC_ALLOWED_PREFIXES = ("src/check/", "tests/")
MODEL_ATOMIC_HEADER = "check/model_atomic.h"

RAW_SYNC_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b")
MANUAL_LOCK_RE = re.compile(r"[\w\)\]]\s*(\.|->)\s*([Ll]ock|[Uu]nlock)\s*\(\s*\)")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:pjoin::)?Mutex\s+(\w+_)\s*;")
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[\w:.\->~\[\]\s]*\w\s*\(")
ANNOTATION_RE = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY|CAPABILITY|"
    r"SCOPED_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS)\s*\(")
MUTEX_USE_RE = re.compile(r"\b(MutexLock|CondVar)\b|\bMutex\b\s*[&*\w]")
RAW_CLOCK_RE = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\s*\(")
# Free calls to socket()/bind()/accept(), optionally ::-qualified. The
# leading character class rejects `std::bind(`, member calls (`x.bind(`,
# `x->bind(`) and identifiers that merely end in a syscall name.
RAW_SOCKET_RE = re.compile(
    r"(?:^|[^\w:.>])(?:::)?(socket|bind|accept)\s*\(")
RAW_MEMORY_ORDER_RE = re.compile(r"\bstd\s*::\s*memory_order(_\w+)?\b")
MC_TYPE_USE_RE = re.compile(r"\bmc\s*::\s*(atomic|Cell|ModelPolicy)\b")
NOLINT_RE = re.compile(r"NOLINT(?:\((?P<rules>[\w,\- ]*)\))?")
LINE_COMMENT_RE = re.compile(r"//.*$")


def nolinted(line, rule):
    m = NOLINT_RE.search(line)
    if not m:
        return False
    rules = m.group("rules")
    return rules is None or rule in [r.strip() for r in rules.split(",")]


def strip_strings(line):
    """Blanks string/char literals so their contents cannot match rules."""
    return re.sub(r'"(\\.|[^"\\])*"|\'(\\.|[^\'\\])*\'', '""', line)


def expected_guard(rel_path):
    inner = rel_path[len("src/"):] if rel_path.startswith("src/") else rel_path
    return "PJOIN_" + re.sub(r"[/.]", "_", inner).upper() + "_"


class Linter:
    def __init__(self):
        self.findings = []  # (path, line_no, rule, message)

    def report(self, path, line_no, rule, message):
        self.findings.append((path, line_no, rule, message))

    def lint_file(self, path, rel_path):
        try:
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
        except (OSError, UnicodeDecodeError) as e:
            self.report(rel_path, 0, "io", f"unreadable: {e}")
            return

        is_wrapper = rel_path.replace(os.sep, "/") == WRAPPER_HEADER.replace(
            os.sep, "/")
        is_src = rel_path.replace(os.sep, "/").startswith("src/")
        may_use_model_atomics = rel_path.replace(os.sep, "/").startswith(
            MODEL_ATOMIC_ALLOWED_PREFIXES)
        in_block_comment = False
        mutex_members = {}  # name -> first declaration line
        guarded_users = set()  # mutex names appearing in GUARDED_BY(...)
        uses_annotations = False
        uses_mutex_types = False
        includes = set()

        for i, raw in enumerate(lines, start=1):
            line = strip_strings(raw)
            # Cheap block-comment tracking: rules do not apply inside.
            code = line
            if in_block_comment:
                end = code.find("*/")
                if end < 0:
                    continue
                code = code[end + 2:]
                in_block_comment = False
            while "/*" in code:
                start = code.find("/*")
                end = code.find("*/", start + 2)
                if end < 0:
                    code = code[:start]
                    in_block_comment = True
                    break
                code = code[:start] + code[end + 2:]
            code_no_comment = LINE_COMMENT_RE.sub("", code)
            if not code_no_comment.strip():
                continue

            # Includes are parsed from the raw line: strip_strings has
            # already blanked the quoted path in `code`.
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', raw)
            if m:
                includes.add(m.group(1))
                if (m.group(1) == MODEL_ATOMIC_HEADER
                        and not may_use_model_atomics
                        and not nolinted(raw, "model-atomic-include")):
                    self.report(rel_path, i, "model-atomic-include",
                                "check/model_atomic.h is test-only: the "
                                "instrumented atomics abort outside the "
                                "model-check scheduler — parameterize on an "
                                "atomics policy instead (see "
                                "common/spsc_ring.h)")

            if (MC_TYPE_USE_RE.search(code_no_comment)
                    and not may_use_model_atomics):
                if not nolinted(raw, "model-atomic-include"):
                    self.report(rel_path, i, "model-atomic-include",
                                "mc::atomic/mc::Cell/mc::ModelPolicy are "
                                "test-only model-checking types; production "
                                "code reaches instrumented atomics only via "
                                "the SpscRing policy template")

            if RAW_SYNC_RE.search(code_no_comment) and not is_wrapper:
                if not nolinted(raw, "raw-sync-primitive"):
                    self.report(rel_path, i, "raw-sync-primitive",
                                "use pjoin::Mutex/MutexLock/CondVar from "
                                "common/mutex.h (annotated for "
                                "-Wthread-safety), not raw std:: types")

            if MANUAL_LOCK_RE.search(code_no_comment) and not is_wrapper:
                if not nolinted(raw, "manual-lock"):
                    self.report(rel_path, i, "manual-lock",
                                "manual lock()/unlock() call; use RAII "
                                "MutexLock instead")

            if (is_src and RAW_CLOCK_RE.search(code_no_comment)
                    and rel_path.replace(os.sep, "/") not in RAW_CLOCK_EXEMPT):
                if not nolinted(raw, "raw-clock"):
                    self.report(rel_path, i, "raw-clock",
                                "raw std::chrono clock read; go through "
                                "common/clock.h (Clock / Stopwatch / "
                                "SteadyDeadlineAfter) so virtual-time "
                                "benches stay honest")

            if (is_src and RAW_SOCKET_RE.search(code_no_comment)
                    and rel_path.replace(os.sep, "/") not in
                    RAW_SOCKET_EXEMPT):
                if not nolinted(raw, "raw-socket"):
                    self.report(rel_path, i, "raw-socket",
                                "raw socket()/bind()/accept() call; network "
                                "IO is confined to src/obs/http_server.cc "
                                "(HttpServer) so fd lifetimes and shutdown "
                                "stay in one audited place")

            if (is_src and RAW_MEMORY_ORDER_RE.search(code_no_comment)
                    and rel_path.replace(os.sep, "/") not in
                    RAW_ATOMIC_EXEMPT):
                if not nolinted(raw, "raw-atomic-ordering"):
                    self.report(rel_path, i, "raw-atomic-ordering",
                                "explicit std::memory_order argument; "
                                "relaxed/acquire/release reasoning is "
                                "confined to common/spsc_ring.h and "
                                "obs/trace.* — use the seq_cst defaults "
                                "here")

            if VOID_DISCARD_RE.search(code_no_comment):
                if not nolinted(raw, "void-status-discard"):
                    self.report(rel_path, i, "void-status-discard",
                                "(void)-discard of a call result; check the "
                                "Status (or bind and DCHECK it) — a plain "
                                "call needs no cast for non-[[nodiscard]] "
                                "types")

            m = MUTEX_MEMBER_RE.match(code_no_comment)
            if m and not is_wrapper and not nolinted(raw, "unguarded-mutex"):
                mutex_members.setdefault(m.group(1), i)
            for g in re.finditer(r"GUARDED_BY\((\w+)\)", code_no_comment):
                guarded_users.add(g.group(1))

            if ANNOTATION_RE.search(code_no_comment):
                uses_annotations = True
            if MUTEX_USE_RE.search(code_no_comment):
                uses_mutex_types = True

        for name, line_no in mutex_members.items():
            if name not in guarded_users:
                self.report(rel_path, line_no, "unguarded-mutex",
                            f"Mutex member '{name}' has no GUARDED_BY({name}) "
                            "user in this file; annotate the members it "
                            "guards")

        exempt_from_include = rel_path.replace(os.sep, "/") in (
            "src/common/thread_annotations.h", WRAPPER_HEADER.replace(os.sep, "/"))
        if is_src and not exempt_from_include:
            if uses_annotations and "common/thread_annotations.h" not in includes \
                    and "common/mutex.h" not in includes:
                self.report(rel_path, 1, "missing-include",
                            "uses thread-safety annotations without "
                            'including "common/thread_annotations.h"')
            if uses_mutex_types and "common/mutex.h" not in includes:
                self.report(rel_path, 1, "missing-include",
                            'uses Mutex/MutexLock/CondVar without including '
                            '"common/mutex.h"')

        if is_src and rel_path.endswith(".h"):
            guard = expected_guard(rel_path.replace(os.sep, "/"))
            text = "\n".join(lines)
            if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
                if not any(nolinted(l, "header-guard") for l in lines[:5]):
                    self.report(rel_path, 1, "header-guard",
                                f"expected header guard {guard}")


def iter_sources(root, dirs, exclude_fixtures=True):
    for d in dirs:
        top = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(top):
            if exclude_fixtures and os.path.abspath(dirpath).startswith(
                    os.path.abspath(os.path.join(root, FIXTURE_DIR))):
                continue
            for name in sorted(filenames):
                if name.endswith((".cc", ".h")):
                    path = os.path.join(dirpath, name)
                    yield path, os.path.relpath(path, root)


def run_repo_lint(root):
    linter = Linter()
    count = 0
    for path, rel in iter_sources(root, SCAN_DIRS):
        count += 1
        linter.lint_file(path, rel)
    for path, line_no, rule, message in linter.findings:
        print(f"{path}:{line_no}: [{rule}] {message}")
    print(f"lint: {count} files scanned, {len(linter.findings)} finding(s)")
    return 1 if linter.findings else 0


# Fixture file -> rules that must fire in it (self-test contract).
FIXTURE_EXPECTATIONS = {
    "bad_raw_mutex.cc": {"raw-sync-primitive"},
    "bad_manual_lock.cc": {"manual-lock"},
    "bad_unguarded_mutex.h": {"unguarded-mutex"},
    "bad_void_discard.cc": {"void-status-discard"},
    "bad_header_guard.h": {"header-guard"},
    "bad_raw_clock.cc": {"raw-clock"},
    "bad_raw_socket.cc": {"raw-socket"},
    "bad_raw_atomic_order.cc": {"raw-atomic-ordering"},
    "bad_model_atomic_include.cc": {"model-atomic-include"},
    "clean.h": set(),
}


def run_self_test(root):
    fixture_root = os.path.join(root, FIXTURE_DIR)
    failures = []
    for name, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(fixture_root, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        linter = Linter()
        # Fixtures pose as src/ files so src-only rules apply.
        linter.lint_file(path, "src/fixture/" + name)
        fired = {rule for _, _, rule, _ in linter.findings}
        # header-guard fires on every .h fixture posing as src/ (their
        # guards are fixture-local); only treat it as signal when expected.
        if "header-guard" not in expected:
            fired.discard("header-guard")
        if expected - fired:
            failures.append(f"{name}: expected {sorted(expected - fired)} "
                            f"to fire, got {sorted(fired)}")
        if not expected and fired:
            failures.append(f"{name}: expected clean, got {sorted(fired)}")
    for f in failures:
        print(f"self-test FAIL: {f}")
    print(f"lint self-test: {len(FIXTURE_EXPECTATIONS)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixture files and check expectations")
    args = parser.parse_args()
    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"error: {args.root} does not look like the repo root",
              file=sys.stderr)
        return 2
    if args.self_test:
        return run_self_test(args.root)
    return run_repo_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
