#!/usr/bin/env python3
"""Model-check report gate: parse and enforce the [MC] summary lines.

Every mc::Explore call in tests/model_check_test.cc prints one line:

  [MC] label=<l> schedules=<N> states=<M> exhaustive=<0|1> bound=<k> \
tso=<0|1> failed=<0|1>

CI pipes the test's stdout through this script (docs/STATIC_ANALYSIS.md
"Model checking"), which turns the free-text log into a hard gate:

  * every label in REQUIRED_EXHAUSTIVE must be present with exhaustive=1
    and failed=0 — a future edit that quietly trips the schedule cap (so
    the DFS no longer covers the full interleaving space within its
    preemption bound) fails CI instead of silently weakening the proof;
  * every label in EXPECTED_FAILING (the planted-bug self-tests: the
    relaxed-publication race, the check-then-wait lost wakeup, Dekker
    under TSO) must be present with failed=1 — if the checker stops
    catching its own planted bugs it has lost its teeth, and that is a
    gate failure even though the gtest suite itself still passes;
  * any other label must report failed=0;
  * duplicate labels and malformed [MC] lines are errors.

Reads the log from the file argument, or stdin when absent. --self-test
runs the gate against embedded good and doctored logs and asserts each
verdict. Exit status: 0 pass, 1 gate failure, 2 usage error.
"""

import argparse
import re
import sys

# Suites whose exploration is exhaustive within the stated preemption
# bound. Keep in sync with tests/model_check_test.cc (every EXPECT_MC_
# EXHAUSTIVE call site).
REQUIRED_EXHAUSTIVE = (
    "self_release_ok",
    "self_eventcount_ok",
    "self_dekker_sc",
    "ring_fifo_cap2",
    "ring_fifo_cap4",
    "ring_fifo_cap1",
    "ring_close_race_cap1",
    "board_routed",
    "board_broadcast",
    "board_recurring",
)

# Planted-bug self-tests: the checker MUST report a failure for these.
EXPECTED_FAILING = (
    "self_relaxed_race",
    "self_lost_wakeup",
    "self_dekker_tso",
)

MC_LINE_RE = re.compile(
    r"^\[MC\] label=(?P<label>\S+) schedules=(?P<schedules>\d+) "
    r"states=(?P<states>\d+) exhaustive=(?P<exhaustive>[01]) "
    r"bound=(?P<bound>-?\d+) tso=(?P<tso>[01]) failed=(?P<failed>[01])\s*$")


def parse(lines):
    """Returns ({label: fields-dict}, [error strings])."""
    runs = {}
    errors = []
    for i, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line.startswith("[MC]"):
            continue
        m = MC_LINE_RE.match(line)
        if not m:
            errors.append(f"line {i}: malformed [MC] line: {line!r}")
            continue
        label = m.group("label")
        if label in runs:
            errors.append(f"line {i}: duplicate [MC] label '{label}'")
            continue
        runs[label] = {k: int(v) for k, v in m.groupdict().items()
                       if k != "label"}
    return runs, errors


def check(runs, errors):
    """Applies the gate; returns the full error list."""
    errors = list(errors)
    for label in REQUIRED_EXHAUSTIVE:
        run = runs.get(label)
        if run is None:
            errors.append(f"required suite '{label}' missing from log")
            continue
        if run["failed"]:
            errors.append(f"suite '{label}' reported a failure")
        if not run["exhaustive"]:
            errors.append(
                f"suite '{label}' was not exhaustive "
                f"({run['schedules']} schedules explored, bound "
                f"{run['bound']}) — it hit a schedule cap; the proof is "
                "now sampling, not coverage")
    for label in EXPECTED_FAILING:
        run = runs.get(label)
        if run is None:
            errors.append(f"planted-bug suite '{label}' missing from log")
            continue
        if not run["failed"]:
            errors.append(
                f"planted-bug suite '{label}' reported failed=0 — the "
                "checker no longer catches its own planted bug")
    known = set(REQUIRED_EXHAUSTIVE) | set(EXPECTED_FAILING)
    for label, run in sorted(runs.items()):
        if label not in known and run["failed"]:
            errors.append(f"suite '{label}' reported a failure")
    return errors


def report(runs, errors):
    total_schedules = sum(r["schedules"] for r in runs.values())
    total_states = sum(r["states"] for r in runs.values())
    for label, run in sorted(runs.items()):
        kind = ("exhaustive" if run["exhaustive"] else "sampled")
        mode = " tso" if run["tso"] else ""
        verdict = "PLANTED-BUG CAUGHT" if run["failed"] else "ok"
        print(f"mc_report: {label}: {run['schedules']} schedules, "
              f"{run['states']} states, {kind} (bound {run['bound']}"
              f"{mode}) — {verdict}")
    for e in errors:
        print(f"mc_report: FAIL: {e}")
    print(f"mc_report: {len(runs)} suite(s), {total_schedules} schedules, "
          f"{total_states} states, {len(errors)} error(s)")
    return 1 if errors else 0


def good_log():
    lines = []
    for label in REQUIRED_EXHAUSTIVE:
        lines.append(f"[MC] label={label} schedules=8192 states=100000 "
                     "exhaustive=1 bound=2 tso=0 failed=0")
    for label in EXPECTED_FAILING:
        lines.append(f"[MC] label={label} schedules=3 states=17 "
                     "exhaustive=0 bound=2 tso=0 failed=1")
    lines.append("[MC] label=ring_fifo_tso schedules=150500 states=900000 "
                 "exhaustive=0 bound=2 tso=1 failed=0")
    lines.append("[ RUN ] noise between MC lines is ignored")
    return lines


def run_self_test():
    failures = []

    def expect(name, lines, want_pass):
        runs, parse_errors = parse(lines)
        errors = check(runs, parse_errors)
        ok = not errors
        if ok != want_pass:
            failures.append(
                f"{name}: expected {'pass' if want_pass else 'fail'}, got "
                f"{'pass' if ok else 'fail'} ({errors[:2]})")

    expect("good log", good_log(), True)

    doctored = [l.replace("label=ring_fifo_cap2 schedules=8192 "
                          "states=100000 exhaustive=1",
                          "label=ring_fifo_cap2 schedules=8192 "
                          "states=100000 exhaustive=0")
                for l in good_log()]
    expect("capped exhaustive suite", doctored, False)

    doctored = [l.replace("label=board_routed schedules=8192 states=100000 "
                          "exhaustive=1 bound=2 tso=0 failed=0",
                          "label=board_routed schedules=8192 states=100000 "
                          "exhaustive=1 bound=2 tso=0 failed=1")
                for l in good_log()]
    expect("failing required suite", doctored, False)

    expect("missing required suite",
           [l for l in good_log() if "ring_fifo_cap1 " not in l], False)

    doctored = [l.replace("label=self_relaxed_race schedules=3 states=17 "
                          "exhaustive=0 bound=2 tso=0 failed=1",
                          "label=self_relaxed_race schedules=1048576 "
                          "states=9999999 exhaustive=0 bound=2 tso=0 "
                          "failed=0")
                for l in good_log()]
    expect("toothless planted-bug suite", doctored, False)

    expect("malformed MC line",
           good_log() + ["[MC] label=oops schedules=banana"], False)

    expect("duplicate label",
           good_log() + [good_log()[0]], False)

    expect("unknown failing suite",
           good_log() + ["[MC] label=new_suite schedules=5 states=9 "
                         "exhaustive=0 bound=1 tso=0 failed=1"], False)

    for f in failures:
        print(f"self-test FAIL: {f}")
    print(f"mc_report self-test: 8 cases, {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("log", nargs="?",
                        help="model_check_test output (default: stdin)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate against embedded sample logs")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    if args.log:
        try:
            with open(args.log, encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    else:
        lines = sys.stdin.readlines()
    runs, parse_errors = parse(lines)
    errors = check(runs, parse_errors)
    return report(runs, errors)


if __name__ == "__main__":
    sys.exit(main())
