// par_scaling: thread-scaling benchmark for the partition-parallel pipeline
// (docs/PERFORMANCE.md).
//
// Baseline: the seed's single-threaded PJoin with linear bucket-scan probing
// (indexed_probe = false), driven through the ordinary JoinPipeline. Against
// it we run the single-threaded indexed probe and the parallel pipeline at a
// sweep of shard counts, on a probe-heavy workload (sparse punctuations, so
// the memory state stays large and probe cost dominates).
//
// Every configuration is checked against the baseline with an
// order-independent multiset oracle (result count + commutative hash of the
// result rows); a machine-readable summary is written to
// BENCH_par_scaling.json.
//
// Usage: par_scaling [--tuples=N] [--shards=a,b,c] [--punct=T] [--out=FILE]
//                    [--reps=N] [--ring=N] [--check] [--trace=FILE]
//                    [--metrics=FILE] [--serve_port=P] [--serve_linger_ms=N]
//   --check    exit non-zero if any oracle fails (CI perf-smoke mode).
//   --reps     wall-clock repetitions per configuration (default 3); the
//              best run is reported, de-noising the perf gate's ratios.
//   --ring     capacity of every pipeline ring (input and shard) in
//              elements; 0 = library defaults. CI's live-scrape smoke
//              shrinks the rings so backpressure and spin-park paths
//              demonstrably fire even on a small workload.
//   --punct_barrier  dispatch broadcast punctuations behind an epoch
//              barrier (router waits for all shards to drain). Fully
//              synchronizing, results identical; shards that drain first
//              go dry, so the smoke can assert pjoin_shard_spin_parks > 0.
//   --stall_polls=N  empty polls before a shard runs stall work and parks
//              (default: library's). The smoke sets 1 so every dry moment
//              takes the spin-then-park slow path and its counter moves.
//   --trace    record operator tracing for the whole sweep and write a
//              Chrome trace_event JSON (Perfetto-loadable); needs a build
//              with PJOIN_TRACING=ON to contain events.
//   --metrics  dump the global MetricsRegistry as JSON after the sweep.
//   --serve_port     serve /metrics, /statusz, /tracez, /healthz on this
//                    loopback port for the duration of the run (0 =
//                    ephemeral; the bound port is printed). See
//                    docs/OBSERVABILITY.md.
//   --health   start the health watchdog (feeds the frontier-lag histogram
//              and /healthz classification; implied by --stall_ms).
//   --stall_ms=N     before the sweep, run a deliberately wedged x1
//              configuration whose join sleeps N ms per tuple: the router
//              runs ahead, punctuation frontiers stall, and a scraper polling
//              /healthz observes 503 (stalled, naming shard 0) for roughly
//              stall_tuples * N ms, then 200 again once it completes. The
//              CI health smoke drives this.
//   --stall_tuples=N  tuples per stream for the stalled run (default 100).
//   --serve_linger_ms  after the sweep, keep re-running the widest parallel
//                    configuration for this long so scrapers catch a live
//                    pipeline; GET /quitquitquit ends the linger early.
//   --zipf=S   skew stream A of the MAIN sweep (zipf exponent over the open
//              window; B stays uniform). The CI forced-skew smoke uses this
//              with --repartition so migration/hot-key metrics move.
//   --repartition    enable runtime repartitioning (adaptive shard map) on
//              the main sweep's parallel runs.
//   --force_migrate=N  with --repartition: force a migration attempt every
//              N routed tuples (test hook; guarantees pjoin_migrations_total
//              moves even on small smoke workloads).
//   --skew_sweep=0   disable the zipf skew sweep (adaptive vs static
//              parallel pipeline at --skew_list exponents, "skew_sweep" in
//              the JSON; the CI skew-gate consumes it).
//   --skew_list=a,b,c  zipf exponents swept (default 0,0.8,1.2,1.6).
//   --skew_tuples=N --skew_window=N  skew-sweep workload shape: stream A
//              draws keys zipf-skewed from a window of N open keys, so the
//              top key's share is ~1/H(window, s) (~44% at s=1.6 for 4096).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "join/pjoin.h"
#include "obs/chrome_trace.h"
#include "obs/health.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ops/parallel_pipeline.h"
#include "ops/pipeline.h"

namespace pjoin {
namespace bench {
namespace {

struct Cli {
  int64_t tuples = 40000;
  double punct_rate = 2000.0;  // tuples per punctuation: sparse = probe-heavy
  int64_t window = 16384;      // open keys: wide = large state, few matches
  // Memory cap (state tuples) for the extra spill configuration; 0 skips it
  // (and the spill sweep below with it). The cap is deliberately tight so
  // the run exercises relocation and the disk join (spill-store page IO
  // shows up in --trace output).
  int64_t memcap = 4096;
  // Spill sweep: a heavy-zipf punctuated workload run at a descending
  // ladder of memory caps (memcap/2, /4, /8), once with the adaptive
  // SpillManager and once in the paper's global-threshold mode, recording
  // the spill-decision stats ("spill_sweep" in the JSON output).
  int64_t spill_tuples = 8000;
  double spill_zipf = 1.2;
  double spill_punct_rate = 20.0;
  std::vector<int> shards = {1, 2, 4};
  // Wall-clock repetitions per measured configuration; the best run is
  // reported. Single-shot numbers on shared runners carry 15-20% scheduler
  // noise — the minimum over a few runs is the standard low-variance
  // estimator, and it is applied to every configuration alike, so the
  // cross-run ratios the perf gate compares stay fair.
  int reps = 3;
  // Ring capacity override (elements) for every SPSC edge; 0 keeps the
  // ParallelPipelineOptions defaults. Small values force the backpressure
  // and park paths, which CI's live scrape asserts via their counters.
  int64_t ring = 0;
  bool punct_barrier = false;
  int64_t stall_polls = 0;  // 0 = ParallelPipelineOptions default
  // Main-sweep skew + repartitioning (the CI forced-skew smoke): stream A
  // zipf exponent, adaptive shard map on the parallel runs, forced
  // migration cadence (0 = only policy-triggered decisions).
  double zipf = 0.0;
  bool repartition = false;
  int64_t force_migrate = 0;
  // Skew sweep: adaptive vs static parallel pipeline at a ladder of zipf
  // exponents, A-side skewed / B uniform ("skew_sweep" in the JSON; the
  // perf gate's skew leg compares the static/adaptive ratio per exponent).
  bool skew_sweep = true;
  std::vector<double> skew_list = {0.0, 0.8, 1.2, 1.6};
  int64_t skew_tuples = 24000;
  int64_t skew_window = 4096;
  std::string out = "BENCH_par_scaling.json";
  std::string trace;    // empty = tracing not started
  std::string metrics;  // empty = no metrics dump
  bool check = false;
  int serve_port = -1;         // -1 = no introspection server
  int64_t serve_linger_ms = 0;
  // Health watchdog + deliberate stall (the CI health smoke).
  bool health = false;
  int64_t stall_ms = 0;      // per-tuple sleep of the wedged run; 0 = skip
  int64_t stall_tuples = 100;
};

Cli ParseCli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--tuples=")) {
      cli.tuples = std::atoll(v);
    } else if (const char* v = value("--window=")) {
      cli.window = std::atoll(v);
    } else if (const char* v = value("--punct=")) {
      cli.punct_rate = std::atof(v);
    } else if (const char* v = value("--memcap=")) {
      cli.memcap = std::atoll(v);
    } else if (const char* v = value("--spill_tuples=")) {
      cli.spill_tuples = std::atoll(v);
    } else if (const char* v = value("--spill_zipf=")) {
      cli.spill_zipf = std::atof(v);
    } else if (const char* v = value("--spill_punct=")) {
      cli.spill_punct_rate = std::atof(v);
    } else if (const char* v = value("--reps=")) {
      cli.reps = std::atoi(v);
      if (cli.reps < 1) cli.reps = 1;
    } else if (const char* v = value("--ring=")) {
      cli.ring = std::atoll(v);
    } else if (arg == "--punct_barrier") {
      cli.punct_barrier = true;
    } else if (const char* v = value("--stall_polls=")) {
      cli.stall_polls = std::atoll(v);
    } else if (const char* v = value("--zipf=")) {
      cli.zipf = std::atof(v);
    } else if (arg == "--repartition") {
      cli.repartition = true;
    } else if (const char* v = value("--force_migrate=")) {
      cli.force_migrate = std::atoll(v);
    } else if (const char* v = value("--skew_sweep=")) {
      cli.skew_sweep = std::atoi(v) != 0;
    } else if (const char* v = value("--skew_tuples=")) {
      cli.skew_tuples = std::atoll(v);
    } else if (const char* v = value("--skew_window=")) {
      cli.skew_window = std::atoll(v);
    } else if (const char* v = value("--skew_list=")) {
      cli.skew_list.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        cli.skew_list.push_back(std::atof(tok.c_str()));
      }
    } else if (const char* v = value("--out=")) {
      cli.out = v;
    } else if (const char* v = value("--trace=")) {
      cli.trace = v;
    } else if (const char* v = value("--metrics=")) {
      cli.metrics = v;
    } else if (const char* v = value("--serve_port=")) {
      cli.serve_port = std::atoi(v);
    } else if (const char* v = value("--serve_linger_ms=")) {
      cli.serve_linger_ms = std::atoll(v);
    } else if (arg == "--health") {
      cli.health = true;
    } else if (const char* v = value("--stall_ms=")) {
      cli.stall_ms = std::atoll(v);
    } else if (const char* v = value("--stall_tuples=")) {
      cli.stall_tuples = std::atoll(v);
    } else if (const char* v = value("--shards=")) {
      cli.shards.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        cli.shards.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--check") {
      cli.check = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return cli;
}

/// Order-independent multiset fingerprint of the emitted result rows: a
/// commutative sum of per-row hashes, each row hashed field-order-sensitively
/// from the field values (no string materialization — the oracle must stay
/// cheap relative to the join work it certifies).
struct Oracle {
  int64_t count = 0;
  uint64_t hash = 0;

  void Add(const Tuple& t) {
    ++count;
    uint64_t row = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < t.num_fields(); ++i) {
      row = (row ^ t.field(i).Hash()) * 0x100000001b3ull;
    }
    hash += row;
  }
  bool operator==(const Oracle& other) const {
    return count == other.count && hash == other.hash;
  }
};

JoinOptions BenchJoinOptions(bool indexed_probe, int64_t memcap = 0) {
  JoinOptions opts;
  opts.num_partitions = 16;
  opts.indexed_probe = indexed_probe;
  if (memcap > 0) opts.runtime.memory_threshold_tuples = memcap;
  return opts;
}

struct Measured {
  std::string name;
  int shards = 0;  // 0 = single-threaded
  bool indexed = false;
  double wall_ms = 0.0;
  Oracle oracle;
  int64_t state_tuples = 0;
  std::vector<ShardStats> shard_stats;
  // Repartitioning activity (0 unless the run had an adaptive shard map).
  int64_t migrations = 0;
  int64_t hot_keys = 0;
  int64_t rollbacks = 0;

  double throughput() const {
    return wall_ms > 0 ? static_cast<double>(oracle.count) / (wall_ms / 1e3)
                       : 0.0;
  }
};

Measured RunSingle(const std::string& name, const GeneratedStreams& streams,
                   bool indexed_probe) {
  Measured m;
  m.name = name;
  m.indexed = indexed_probe;
  PJoin join(streams.schema_a, streams.schema_b,
             BenchJoinOptions(indexed_probe));
  join.set_result_callback([&m](const Tuple& t) { m.oracle.Add(t); });
  JoinPipeline pipeline(&join, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = pipeline.Run(streams.a, streams.b);
  const auto t1 = std::chrono::steady_clock::now();
  PJOIN_DCHECK(st.ok());
  m.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1e3;
  m.state_tuples = join.total_state_tuples();
  return m;
}

// Run names spell out the probe mode: the parallel pipeline composes with
// either per-shard probe (`_indexed` / `_scan`); the `_spill` run is the
// memory-capped indexed configuration.
Measured RunParallel(const GeneratedStreams& streams, int shards,
                     bool indexed_probe, int64_t memcap = 0,
                     int64_t ring_capacity = 0, bool punct_barrier = false,
                     int64_t stall_polls = 0,
                     const RepartitionPolicy& repart = {}) {
  Measured m;
  m.name = "parallel_x" + std::to_string(shards) +
           (memcap > 0 ? "_spill" : (indexed_probe ? "_indexed" : "_scan"));
  m.shards = shards;
  m.indexed = indexed_probe;
  ParallelPipelineOptions popts;
  popts.num_shards = shards;
  if (ring_capacity > 0) {
    popts.input_buffer_capacity = static_cast<size_t>(ring_capacity);
    popts.shard_queue_capacity = static_cast<size_t>(ring_capacity);
  }
  popts.punct_barrier = punct_barrier;
  if (stall_polls > 0) popts.stall_polls = stall_polls;
  popts.repartition = repart;
  ParallelJoinPipeline pipeline(
      [&streams, indexed_probe, memcap, shards](int) {
        // The cap is per shard: split the total budget so the aggregate
        // in-memory state matches the single-cap intent.
        return std::make_unique<PJoin>(
            streams.schema_a, streams.schema_b,
            BenchJoinOptions(indexed_probe, memcap > 0 ? memcap / shards : 0));
      },
      popts);
  pipeline.set_result_callback([&m](const Tuple& t) { m.oracle.Add(t); });
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = pipeline.Run(streams.a, streams.b);
  const auto t1 = std::chrono::steady_clock::now();
  PJOIN_DCHECK(st.ok());
  m.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1e3;
  m.shard_stats = pipeline.shard_stats();
  for (const ShardStats& s : m.shard_stats) m.state_tuples += s.state_tuples;
  m.migrations = pipeline.migrations_completed();
  m.hot_keys = pipeline.hot_keys_active();
  m.rollbacks = pipeline.migration_rollbacks();
  return m;
}

// ---- Deliberately stalled run (the CI health smoke) ----

/// A PJoin that sleeps per tuple. The router routes the whole (small)
/// workload far ahead of the grinding shard, so every routed punctuation
/// raises that shard's frontier lag: /healthz reports 503 with a root-cause
/// chain naming shard 0 for roughly stall_tuples * stall_ms, then returns
/// to 200 when the run completes and the frontier catches up.
class SlowPJoin : public PJoin {
 public:
  SlowPJoin(SchemaPtr left, SchemaPtr right, JoinOptions options,
            int64_t sleep_ms)
      : PJoin(std::move(left), std::move(right), std::move(options)),
        sleep_ms_(sleep_ms) {}

 protected:
  Status OnTupleHashed(int side, const Tuple& tuple,
                       uint64_t key_hash) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    return PJoin::OnTupleHashed(side, tuple, key_hash);
  }

 private:
  const int64_t sleep_ms_;
};

void RunStalledConfig(const Cli& cli) {
  DomainSpec domain;
  domain.window_size = 16;
  StreamSpec spec;
  spec.num_tuples = cli.stall_tuples;
  // Frequent punctuations: the frontier cells see ingress traffic early in
  // the stall window, not just at end-of-stream.
  spec.punct_mean_interarrival_tuples = 4.0;
  spec.flush_punctuations_at_end = true;
  const GeneratedStreams streams = GenerateStreams(domain, spec, spec, 2004);
  ParallelPipelineOptions popts;
  popts.num_shards = 1;
  popts.batch_size = 1;
  ParallelJoinPipeline pipeline(
      [&streams, &cli](int) {
        return std::make_unique<SlowPJoin>(streams.schema_a, streams.schema_b,
                                           BenchJoinOptions(true),
                                           cli.stall_ms);
      },
      popts);
  int64_t results = 0;
  pipeline.set_result_callback([&results](const Tuple&) { ++results; });
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = pipeline.Run(streams.a, streams.b);
  const auto t1 = std::chrono::steady_clock::now();
  PJOIN_DCHECK(st.ok());
  std::printf("  stalled run done: %lld tuples/stream x %lld ms/tuple, "
              "%.1f s wall, %lld results\n",
              static_cast<long long>(cli.stall_tuples),
              static_cast<long long>(cli.stall_ms),
              std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                      .count() /
                  1e3,
              static_cast<long long>(results));
  std::fflush(stdout);
}

// ---- Skew sweep: adaptive vs static shard map at a zipf ladder ----

/// Fraction of the run's results produced by the busiest shard (0.25 =
/// perfectly balanced at x4). This — not wall time — is the gated skew
/// metric: it is what repartitioning actually controls, it is
/// deterministic for a seeded workload, and it is meaningful on any host
/// (wall time only rewards balance when shards own physical cores, which
/// a 1-core CI box never grants).
double BottleneckShare(const Measured& m) {
  int64_t max_results = 0;
  int64_t total = 0;
  for (const ShardStats& s : m.shard_stats) {
    max_results = std::max(max_results, s.results);
    total += s.results;
  }
  return total > 0 ? static_cast<double>(max_results) /
                         static_cast<double>(total)
                   : 0.0;
}

struct SkewPoint {
  double zipf_s = 0.0;
  Measured static_run;
  Measured adaptive_run;
  bool oracle_pass = false;  // both runs match the 1-thread reference

  /// Informational wall ratio (>1 = adaptive faster); noisy on shared
  /// hosts, so the CI gate reads the bottleneck shares instead.
  double StaticOverAdaptive() const {
    return adaptive_run.wall_ms > 0
               ? static_run.wall_ms / adaptive_run.wall_ms
               : 0.0;
  }
};

/// One zipf exponent: stream A skewed, B uniform (the celebrity-key shape —
/// skewing both sides would explode the result count quadratically), run
/// static and adaptive at the widest shard count, best-of-reps interleaved.
SkewPoint RunSkewPoint(const Cli& cli, double zipf_s, int shards) {
  DomainSpec domain;
  domain.window_size = cli.skew_window;
  StreamSpec spec_a;
  spec_a.num_tuples = cli.skew_tuples;
  // The domain frontier (and with it the identity of the hottest key)
  // advances only on punctuation, so the punctuation cadence sets how fast
  // hotness drifts. A handful of reigns per run is the regime runtime
  // repartitioning targets; sub-window reigns degenerate into noise no
  // placement can exploit.
  spec_a.punct_mean_interarrival_tuples =
      static_cast<double>(cli.skew_tuples) / 4.0;
  spec_a.zipf_s = zipf_s;
  spec_a.flush_punctuations_at_end = true;
  StreamSpec spec_b = spec_a;
  spec_b.zipf_s = 0.0;
  const GeneratedStreams streams =
      GenerateStreams(domain, spec_a, spec_b, 2004);

  SkewPoint point;
  point.zipf_s = zipf_s;
  const Measured reference = RunSingle("skew_ref", streams, true);

  // Bounded shard queues (identical for both runs): a handoff command
  // travels FIFO behind each shard's backlog, so the router's lead over
  // the shards is the floor on handoff latency. Offline replay with
  // unbounded queues lets the router finish routing before the first
  // handoff lands, which would measure nothing.
  const int64_t ring_capacity = 16;

  RepartitionPolicy adaptive;
  adaptive.enabled = true;
  // Slightly below the library default (1.25): the sweep's hot key drifts
  // at reign boundaries, and the diluted boundary windows sit around
  // 1.2x. Everything else: library defaults.
  adaptive.imbalance_trigger = 1.15;
  for (int rep = 0; rep < cli.reps; ++rep) {
    Measured s = RunParallel(streams, shards, /*indexed_probe=*/true,
                             /*memcap=*/0, ring_capacity);
    Measured a = RunParallel(streams, shards, /*indexed_probe=*/true,
                             /*memcap=*/0, ring_capacity,
                             /*punct_barrier=*/false, /*stall_polls=*/0,
                             adaptive);
    if (rep == 0 || s.wall_ms < point.static_run.wall_ms) {
      point.static_run = std::move(s);
    }
    if (rep == 0 || a.wall_ms < point.adaptive_run.wall_ms) {
      point.adaptive_run = std::move(a);
    }
  }
  point.static_run.name = "skew_static";
  point.adaptive_run.name = "skew_adaptive";
  point.oracle_pass = point.static_run.oracle == reference.oracle &&
                      point.adaptive_run.oracle == reference.oracle;
  return point;
}

void WriteSkewSweepJson(std::ofstream& out, const Cli& cli, int shards,
                        const std::vector<SkewPoint>& points) {
  out << "  \"skew_sweep\": {\n";
  out << "    \"config\": {\"tuples_per_stream\": " << cli.skew_tuples
      << ", \"window\": " << cli.skew_window << ", \"shards\": " << shards
      << ", \"punct_mean_interarrival_tuples\": " << cli.punct_rate
      << ", \"reps\": " << cli.reps << "},\n";
  out << "    \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SkewPoint& p = points[i];
    out << "      {\"zipf_s\": " << p.zipf_s
        << ", \"static_wall_ms\": " << p.static_run.wall_ms
        << ", \"adaptive_wall_ms\": " << p.adaptive_run.wall_ms
        << ", \"static_over_adaptive\": " << p.StaticOverAdaptive()
        << ", \"static_bottleneck_share\": "
        << BottleneckShare(p.static_run)
        << ", \"adaptive_bottleneck_share\": "
        << BottleneckShare(p.adaptive_run)
        << ", \"oracle_pass\": " << (p.oracle_pass ? "true" : "false")
        << ", \"migrations\": " << p.adaptive_run.migrations
        << ", \"hot_keys\": " << p.adaptive_run.hot_keys
        << ", \"rollbacks\": " << p.adaptive_run.rollbacks << "}"
        << (i + 1 == points.size() ? "" : ",") << "\n";
  }
  out << "    ]\n  },\n";
}

// ---- Spill sweep: adaptive SpillManager vs the paper's global threshold ----

struct SpillMeasured {
  std::string mode;  // "adaptive" | "global"
  int64_t memcap = 0;
  double wall_ms = 0.0;
  Oracle oracle;
  SpillDecisionStats stats;
};

SpillMeasured RunSpillConfig(const GeneratedStreams& streams, SpillMode mode,
                             int64_t memcap) {
  SpillMeasured m;
  m.mode = mode == SpillMode::kAdaptive ? "adaptive" : "global";
  m.memcap = memcap;
  JoinOptions opts;
  opts.num_partitions = 16;
  opts.runtime.memory_threshold_tuples = memcap;
  // Lazy purging, never triggered at this workload's punctuation count: all
  // dead-state reclamation under pressure is the spill path's to claim, so
  // the two modes differ only in their spill decisions.
  opts.runtime.purge_threshold = 1 << 20;
  opts.spill_policy.mode = mode;
  PJoin join(streams.schema_a, streams.schema_b, opts);
  join.set_result_callback([&m](const Tuple& t) { m.oracle.Add(t); });
  JoinPipeline pipeline(&join, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = pipeline.Run(streams.a, streams.b);
  const auto t1 = std::chrono::steady_clock::now();
  PJOIN_DCHECK(st.ok());
  m.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1e3;
  m.stats = join.spill_stats();
  return m;
}

/// Heavy-zipf punctuated workload at a descending ladder of memory caps,
/// each cap once adaptive and once global-threshold. `oracle` receives the
/// uncapped reference every run must reproduce.
std::vector<SpillMeasured> RunSpillSweep(const Cli& cli, Oracle* oracle) {
  DomainSpec domain;  // default window: key lifetime ~ window * punct rate
  StreamSpec spec;
  spec.num_tuples = cli.spill_tuples;
  spec.punct_mean_interarrival_tuples = cli.spill_punct_rate;
  spec.zipf_s = cli.spill_zipf;
  const GeneratedStreams streams = GenerateStreams(domain, spec, spec, 2004);

  const SpillMeasured reference =
      RunSpillConfig(streams, SpillMode::kAdaptive, /*memcap=*/0);
  *oracle = reference.oracle;

  std::vector<SpillMeasured> runs;
  for (const int64_t divisor : {2, 4, 8}) {
    const int64_t cap = cli.memcap / divisor;
    if (cap <= 0) continue;
    runs.push_back(RunSpillConfig(streams, SpillMode::kAdaptive, cap));
    runs.push_back(RunSpillConfig(streams, SpillMode::kGlobalThreshold, cap));
  }
  return runs;
}

void WriteSpillSweepJson(std::ofstream& out, const Cli& cli,
                         const Oracle& oracle,
                         const std::vector<SpillMeasured>& runs) {
  out << "  \"spill_sweep\": {\n";
  out << "    \"config\": {\"tuples_per_stream\": " << cli.spill_tuples
      << ", \"zipf_s\": " << cli.spill_zipf
      << ", \"punct_mean_interarrival_tuples\": " << cli.spill_punct_rate
      << "},\n";
  out << "    \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SpillMeasured& m = runs[i];
    const SpillDecisionStats& s = m.stats;
    out << "      {\"mode\": \"" << m.mode << "\", \"memcap\": " << m.memcap
        << ", \"wall_ms\": " << m.wall_ms
        << ", \"oracle_pass\": " << (m.oracle == oracle ? "true" : "false")
        << ", \"spills\": " << s.spills
        << ", \"tuples_spilled\": " << s.tuples_spilled
        << ", \"bytes_spilled\": " << s.bytes_spilled
        << ", \"early_purge_runs\": " << s.early_purge_runs
        << ", \"tuples_early_purged\": " << s.tuples_early_purged
        << ", \"bytes_early_purged\": " << s.bytes_early_purged
        << ", \"repartitions\": " << s.repartitions
        << ", \"spill_failures\": " << s.spill_failures
        << ", \"budget_overruns\": " << s.budget_overruns
        << ", \"degraded\": " << (s.degraded ? "true" : "false") << "}"
        << (i + 1 == runs.size() ? "" : ",") << "\n";
  }
  out << "    ]\n  },\n";
}

void WriteJson(const std::string& path, const Cli& cli,
               const Measured& baseline, const Measured& indexed,
               const std::vector<Measured>& parallel,
               const Oracle& spill_oracle,
               const std::vector<SpillMeasured>& spill_runs, int skew_shards,
               const std::vector<SkewPoint>& skew_points) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"par_scaling\",\n";
  out << "  \"config\": {\"tuples_per_stream\": " << cli.tuples
      << ", \"punct_mean_interarrival_tuples\": " << cli.punct_rate
      << ", \"num_partitions\": 16, \"reps\": " << cli.reps << "},\n";
  if (!spill_runs.empty()) {
    WriteSpillSweepJson(out, cli, spill_oracle, spill_runs);
  }
  if (!skew_points.empty()) {
    WriteSkewSweepJson(out, cli, skew_shards, skew_points);
  }
  auto emit_run = [&out](const Measured& m, const Measured& base,
                         bool last) {
    out << "    {\"name\": \"" << m.name << "\", \"shards\": " << m.shards
        << ", \"indexed\": " << (m.indexed ? "true" : "false")
        << ", \"wall_ms\": " << m.wall_ms
        << ", \"results\": " << m.oracle.count
        << ", \"throughput_results_per_sec\": " << m.throughput()
        << ", \"speedup_vs_scan_baseline\": "
        << (m.wall_ms > 0 ? base.wall_ms / m.wall_ms : 0.0)
        << ", \"oracle_pass\": " << (m.oracle == base.oracle ? "true" : "false")
        << ", \"state_tuples\": " << m.state_tuples;
    if (!m.shard_stats.empty()) {
      out << ", \"shard_occupancy\": [";
      for (size_t i = 0; i < m.shard_stats.size(); ++i) {
        const ShardStats& s = m.shard_stats[i];
        out << (i ? ", " : "") << "{\"shard\": " << s.shard
            << ", \"tuples\": " << s.tuples << ", \"results\": " << s.results
            << ", \"state_tuples\": " << s.state_tuples << "}";
      }
      out << "]";
    }
    out << "}" << (last ? "" : ",") << "\n";
  };
  out << "  \"runs\": [\n";
  emit_run(baseline, baseline, false);
  emit_run(indexed, baseline, parallel.empty());
  for (size_t i = 0; i < parallel.size(); ++i) {
    emit_run(parallel[i], baseline, i + 1 == parallel.size());
  }
  out << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  const Cli cli = ParseCli(argc, argv);

  PrintHeader("par_scaling", "Partition-parallel scaling (PJoin)",
              "probe-heavy workload: " + std::to_string(cli.tuples) +
                  " tuples/stream, 1 punctuation per " +
                  std::to_string(static_cast<int64_t>(cli.punct_rate)) +
                  " tuples");

  DomainSpec domain;
  domain.window_size = cli.window;
  StreamSpec spec;
  spec.num_tuples = cli.tuples;
  spec.punct_mean_interarrival_tuples = cli.punct_rate;
  spec.flush_punctuations_at_end = true;
  StreamSpec spec_a = spec;
  spec_a.zipf_s = cli.zipf;  // forced-skew smoke: A skewed, B uniform
  const GeneratedStreams streams = GenerateStreams(domain, spec_a, spec, 2004);

  // Adaptive shard map for the main sweep's parallel runs (the forced-skew
  // smoke turns this on so the migration/hot-key metrics move live).
  RepartitionPolicy main_repart;
  main_repart.enabled = cli.repartition;
  main_repart.force_migration_interval = cli.force_migrate;

  if (!cli.trace.empty()) {
    obs::Tracer::Global().Start();
    TRACE_SET_THREAD_NAME("bench-main");
  }

  std::unique_ptr<obs::IntrospectionServer> server;
  if (cli.serve_port >= 0) {
    server = std::make_unique<obs::IntrospectionServer>();
    const Status st = server->Start(cli.serve_port);
    if (!st.ok()) {
      std::fprintf(stderr, "introspection server failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("  serving introspection on http://127.0.0.1:%d\n",
                server->port());
    std::fflush(stdout);  // scrape scripts poll for this line
  }

  // The watchdog classifies /healthz and feeds pjoin_frontier_lag_seconds;
  // a stalled run is pointless without it, so --stall_ms implies --health.
  const bool health = cli.health || cli.stall_ms > 0;
  if (health) {
    obs::HealthMonitor::Global().Start();
  }
  if (cli.stall_ms > 0) {
    std::printf("  running wedged x1 configuration (%lld ms/tuple)...\n",
                static_cast<long long>(cli.stall_ms));
    std::fflush(stdout);
    RunStalledConfig(cli);
  }

  // Spill sweep first: its counters populate the pjoin_spill_* metrics
  // early, so live scrapers attaching any time after the server banner see
  // nonzero spill cells.
  Oracle spill_oracle;
  std::vector<SpillMeasured> spill_runs;
  if (cli.memcap > 0) {
    spill_runs = RunSpillSweep(cli, &spill_oracle);
  }

  // The configuration sweep, measured best-of-N wall clock. Repetitions are
  // interleaved round-robin (rep 0 of every configuration, then rep 1 of
  // every configuration, ...) rather than back-to-back, so a noisy
  // scheduler window on a shared runner degrades every configuration's
  // sample alike instead of condemning whichever one it landed on — the
  // perf gate compares cross-run ratios, which interleaving keeps fair.
  // The result oracle must agree across repetitions of a configuration.
  std::vector<std::function<Measured()>> configs;
  configs.push_back([&] { return RunSingle("scan_1thread", streams, false); });
  configs.push_back([&] { return RunSingle("indexed_1thread", streams, true); });
  for (const int shards : cli.shards) {
    configs.push_back(
        [&, shards] { return RunParallel(streams, shards,
                                         /*indexed_probe=*/true,
                                         /*memcap=*/0, cli.ring,
                                         cli.punct_barrier,
                                         cli.stall_polls, main_repart); });
  }
  if (!cli.shards.empty()) {
    // The widest shard count with the seed's scan probe: isolates how much
    // of the parallel_x*_indexed speedup is the pipeline vs the index.
    configs.push_back([&] {
      return RunParallel(streams, cli.shards.back(), /*indexed_probe=*/false,
                         /*memcap=*/0, cli.ring, cli.punct_barrier,
                         cli.stall_polls, main_repart);
    });
  }
  if (cli.memcap > 0 && !cli.shards.empty()) {
    // One memory-capped configuration at the widest shard count: state
    // relocation and the disk join run under pressure, so the spill path
    // is measured (and traced) alongside the in-memory sweep.
    configs.push_back([&] {
      return RunParallel(streams, cli.shards.back(), /*indexed_probe=*/true,
                         cli.memcap, cli.ring, cli.punct_barrier,
                         cli.stall_polls);
    });
  }
  std::vector<Measured> measured(configs.size());
  for (int rep = 0; rep < cli.reps; ++rep) {
    for (size_t i = 0; i < configs.size(); ++i) {
      Measured m = configs[i]();
      if (rep == 0) {
        measured[i] = std::move(m);
        continue;
      }
      PJOIN_DCHECK(m.oracle == measured[i].oracle);
      if (m.wall_ms < measured[i].wall_ms) measured[i] = std::move(m);
    }
  }
  const Measured& baseline = measured[0];
  const Measured& indexed = measured[1];
  std::vector<Measured> parallel(measured.begin() + 2, measured.end());

  bool all_pass = indexed.oracle == baseline.oracle;
  std::printf("  %-18s %10s %12s %10s %8s\n", "run", "wall_ms",
              "results/s", "speedup", "oracle");
  auto report = [&](const Measured& m) {
    const bool pass = m.oracle == baseline.oracle;
    std::printf("  %-18s %10.1f %12.0f %9.2fx %8s\n", m.name.c_str(),
                m.wall_ms, m.throughput(),
                m.wall_ms > 0 ? baseline.wall_ms / m.wall_ms : 0.0,
                pass ? "PASS" : "FAIL");
  };
  report(baseline);
  report(indexed);
  for (const Measured& m : parallel) {
    all_pass = all_pass && m.oracle == baseline.oracle;
    report(m);
  }

  // Skew sweep: adaptive vs static shard map across the zipf ladder. At
  // high skew the adaptive map must win (hot-key replication spreads the
  // celebrity key's probe work); at zero skew it must cost nothing.
  std::vector<SkewPoint> skew_points;
  const int skew_shards = cli.shards.empty() ? 4 : cli.shards.back();
  if (cli.skew_sweep && skew_shards > 1) {
    std::printf("  skew sweep (%lld tuples/stream, window %lld, x%d):\n",
                static_cast<long long>(cli.skew_tuples),
                static_cast<long long>(cli.skew_window), skew_shards);
    std::printf("  %-8s %10s %11s %7s %9s %9s %5s %4s %7s\n", "zipf_s",
                "static_ms", "adaptive_ms", "ratio", "st_share", "ad_share",
                "migr", "hot", "oracle");
    for (const double s : cli.skew_list) {
      SkewPoint point = RunSkewPoint(cli, s, skew_shards);
      all_pass = all_pass && point.oracle_pass;
      std::printf("  %-8.2f %10.1f %11.1f %6.2fx %9.3f %9.3f %5lld %4lld %7s\n",
                  point.zipf_s, point.static_run.wall_ms,
                  point.adaptive_run.wall_ms, point.StaticOverAdaptive(),
                  BottleneckShare(point.static_run),
                  BottleneckShare(point.adaptive_run),
                  static_cast<long long>(point.adaptive_run.migrations),
                  static_cast<long long>(point.adaptive_run.hot_keys),
                  point.oracle_pass ? "PASS" : "FAIL");
      skew_points.push_back(std::move(point));
    }
  }

  if (!spill_runs.empty()) {
    std::printf("  spill sweep (zipf %.2f, %lld tuples/stream):\n",
                cli.spill_zipf, static_cast<long long>(cli.spill_tuples));
    std::printf("  %-10s %8s %12s %14s %8s %8s\n", "mode", "memcap",
                "bytes_spill", "bytes_epurged", "repart", "oracle");
    for (const SpillMeasured& m : spill_runs) {
      const bool pass = m.oracle == spill_oracle;
      all_pass = all_pass && pass;
      std::printf("  %-10s %8lld %12lld %14lld %8lld %8s\n", m.mode.c_str(),
                  static_cast<long long>(m.memcap),
                  static_cast<long long>(m.stats.bytes_spilled),
                  static_cast<long long>(m.stats.bytes_early_purged),
                  static_cast<long long>(m.stats.repartitions),
                  pass ? "PASS" : "FAIL");
    }
  }

  WriteJson(cli.out, cli, baseline, indexed, parallel, spill_oracle,
            spill_runs, skew_shards, skew_points);
  std::printf("  wrote %s\n", cli.out.c_str());

  if (server != nullptr && cli.serve_linger_ms > 0) {
    std::printf(
        "  lingering %lld ms for scrapes (GET /quitquitquit ends early)\n",
        static_cast<long long>(cli.serve_linger_ms));
    std::fflush(stdout);
    const int widest = cli.shards.empty() ? 1 : cli.shards.back();
    const Stopwatch linger;
    while (linger.ElapsedMicros() < cli.serve_linger_ms * 1000 &&
           !server->quit_requested()) {
      // Keep a pipeline running so scrapes catch live /statusz sections and
      // moving queue-depth gauges, not just end-of-run values.
      const Measured again = RunParallel(streams, widest,
                                         /*indexed_probe=*/true,
                                         /*memcap=*/0, cli.ring,
                                         cli.punct_barrier,
                                         cli.stall_polls);
      all_pass = all_pass && again.oracle == baseline.oracle;
    }
  }

  if (health) {
    obs::HealthMonitor::Global().Stop();
  }

  if (!cli.trace.empty()) {
    obs::Tracer::Global().Stop();
    const Status st = obs::WriteChromeTraceFile(cli.trace);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("  wrote %s (%lld events dropped by ring overflow)\n",
                cli.trace.c_str(),
                static_cast<long long>(obs::Tracer::Global().dropped_events()));
  }
  if (!cli.metrics.empty()) {
    std::ofstream mout(cli.metrics);
    mout << obs::MetricsRegistry::Global().ToJson();
    if (!mout) {
      std::fprintf(stderr, "metrics export to %s failed\n",
                   cli.metrics.c_str());
      return 1;
    }
    std::printf("  wrote %s\n", cli.metrics.c_str());
  }

  PrintShapeCheck("parallel output multiset == single-threaded reference",
                  all_pass);
  double best_speedup = 0;
  for (const Measured& m : parallel) {
    if (m.wall_ms > 0) {
      best_speedup = std::max(best_speedup, baseline.wall_ms / m.wall_ms);
    }
  }
  PrintMetric("best parallel speedup vs scan baseline", best_speedup, "x");

  if (cli.check && !all_pass) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pjoin

int main(int argc, char** argv) { return pjoin::bench::Main(argc, argv); }
