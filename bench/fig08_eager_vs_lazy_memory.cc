// Figure 8: memory overhead of eager purge (PJoin-1) vs lazy purge
// (PJoin-10). Punctuation inter-arrival: 10 tuples/punctuation. Paper:
// "eager purge is the best strategy for minimizing the join state, whereas
// the lazy purge requires more memory."

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 10;
  cfg.punct_b = 10;
  GeneratedStreams g = cfg.Generate();

  auto run = [&](int64_t threshold) {
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = threshold;
    PJoin join(g.schema_a, g.schema_b, opts);
    return RunExperiment(&join, g);
  };
  RunStats eager = run(1);
  RunStats lazy = run(10);

  PrintHeader("Figure 8", "eager vs lazy purge: memory overhead",
              "20k tuples/stream, punct inter-arrival 10; PJoin-1 vs "
              "PJoin-10");
  PrintTable("stream_s", eager.stream_micros, 20,
             {{"pjoin1_state", &eager.state_vs_stream},
              {"pjoin10_state", &lazy.state_vs_stream}});
  PrintMetric("pjoin-1 mean state", eager.mean_state, "tuples");
  PrintMetric("pjoin-10 mean state", lazy.mean_state, "tuples");
  PrintMetric("pjoin-1 purge runs",
              static_cast<double>(eager.counters.Get("purge_runs")));
  PrintMetric("pjoin-10 purge runs",
              static_cast<double>(lazy.counters.Get("purge_runs")));
  PrintShapeCheck("eager purge minimizes state (mean-1 < mean-10)",
                  eager.mean_state < lazy.mean_state);
  PrintShapeCheck("identical result sets", eager.results == lazy.results);
  return 0;
}
