// Ablation A5: clustered vs uniform key arrival. Clustered arrival is the
// k-constraint of [3] that paper §5 notes punctuations can represent: all
// tuples of a key arrive contiguously and the key's punctuation follows the
// cluster. Eager PJoin then keeps only the active cluster in state.

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

RunStats Run(bool clustered, TimeSeries* out_state) {
  DomainSpec d;
  d.window_size = 20;
  StreamSpec spec;
  spec.num_tuples = 20000;
  spec.tuple_mean_interarrival_micros = 2000.0;
  spec.punct_mean_interarrival_tuples = 20;
  spec.clustered = clustered;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 2004);

  JoinOptions opts;
  EnableStateSampling(&opts);
  opts.runtime.purge_threshold = 1;
  PJoin join(g.schema_a, g.schema_b, opts);
  RunStats rs = RunExperiment(&join, g);
  *out_state = rs.state_vs_stream;
  return rs;
}

}  // namespace

int main() {
  TimeSeries uniform_state;
  TimeSeries clustered_state;
  RunStats uniform = Run(false, &uniform_state);
  RunStats clustered = Run(true, &clustered_state);

  PrintHeader("Ablation A5", "clustered vs uniform key arrival",
              "20k tuples/stream, punct inter-arrival 20, eager purge");
  PrintTable("stream_s", uniform.stream_micros, 20,
             {{"uniform_state", &uniform_state},
              {"clustered_state", &clustered_state}});
  PrintMetric("uniform mean state", uniform.mean_state, "tuples");
  PrintMetric("clustered mean state", clustered.mean_state, "tuples");
  PrintMetric("uniform results", static_cast<double>(uniform.results));
  PrintMetric("clustered results", static_cast<double>(clustered.results));
  PrintShapeCheck(
      "clustered arrival shrinks the eager-purge state (>= 3x smaller)",
      clustered.mean_state * 3 < uniform.mean_state);
  return 0;
}
