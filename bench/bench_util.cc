#include "bench_util.h"

#include <cstdio>

#include "ops/pipeline.h"

namespace pjoin {
namespace bench {

GeneratedStreams ExperimentConfig::Generate() const {
  DomainSpec d;
  d.window_size = window;
  StreamSpec a;
  a.num_tuples = num_tuples;
  a.tuple_mean_interarrival_micros = 2000.0;  // paper: 2 ms
  a.punct_mean_interarrival_tuples = punct_a;
  StreamSpec b = a;
  b.punct_mean_interarrival_tuples = punct_b;
  return GenerateStreams(d, a, b, seed);
}

void EnableStateSampling(JoinOptions* options) {
  options->state_sample_interval = 1;
}

RunStats RunExperiment(
    JoinOperator* join, const GeneratedStreams& streams,
    int64_t sample_every,
    const std::function<void(const JoinOperator&)>& on_sample,
    const std::function<void(const Punctuation&)>& on_punct) {
  RunStats stats;
  int64_t results = 0;
  int64_t puncts = 0;
  join->set_result_callback([&results](const Tuple&) { ++results; });
  join->set_punct_callback([&puncts, &on_punct](const Punctuation& p) {
    ++puncts;
    if (on_punct) on_punct(p);
  });

  Stopwatch watch;
  PipelineOptions popts;
  popts.stall_gap_micros = 8000;  // network lull: 4x the mean inter-arrival
  popts.progress = [&](int64_t n) {
    if (n % sample_every != 0) return;
    stats.output_vs_wall.Record(watch.ElapsedMicros(), results);
    stats.puncts_vs_stream.Record(join->last_arrival(), puncts);
    if (on_sample) on_sample(*join);
  };
  JoinPipeline pipeline(join, nullptr, popts);
  Status st = pipeline.Run(streams.a, streams.b);
  PJOIN_DCHECK(st.ok());

  stats.wall_micros = watch.ElapsedMicros();
  stats.stream_micros = join->last_arrival();
  stats.output_vs_wall.Record(stats.wall_micros, results);
  stats.puncts_vs_stream.Record(stats.stream_micros, puncts);
  stats.results = results;
  stats.puncts_out = puncts;
  stats.state_vs_stream = join->state_series();
  // The stream is over: surface the thinned tail sample so the series ends
  // at the operator's true final state (post-purge size, not whichever
  // sample last cleared the thinning interval).
  stats.state_vs_stream.Flush();
  stats.counters = join->counters();
  stats.max_state = stats.state_vs_stream.MaxValue();
  stats.mean_state = stats.state_vs_stream.MeanValue();
  return stats;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& setup) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("==============================================================\n");
}

void PrintTable(const std::string& axis_name, TimeMicros horizon, int buckets,
                const std::vector<Series>& series) {
  std::printf("%-12s", axis_name.c_str());
  for (const Series& s : series) std::printf(" %16s", s.name.c_str());
  std::printf("\n");
  std::vector<std::vector<Sample>> grids;
  grids.reserve(series.size());
  for (const Series& s : series) {
    grids.push_back(s.data->Resample(horizon, buckets));
  }
  for (int b = 0; b < buckets; ++b) {
    const double axis =
        static_cast<double>(grids[0][static_cast<size_t>(b)].time) / 1e6;
    std::printf("%-12.2f", axis);
    for (const auto& grid : grids) {
      std::printf(" %16lld",
                  static_cast<long long>(grid[static_cast<size_t>(b)].value));
    }
    std::printf("\n");
  }
}

void PrintMetric(const std::string& name, double value,
                 const std::string& unit) {
  std::printf("  %-42s %14.2f %s\n", name.c_str(), value, unit.c_str());
}

void PrintShapeCheck(const std::string& expectation, bool holds) {
  std::printf("SHAPE %s: %s\n", holds ? "OK  " : "FAIL", expectation.c_str());
}

}  // namespace bench
}  // namespace pjoin
