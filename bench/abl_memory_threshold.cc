// Ablation A3: memory-threshold sweep. How much spill I/O do XJoin and
// PJoin incur as the in-memory budget shrinks? PJoin's purging keeps it
// below the threshold most of the time, so it should spill far less.

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 20;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  const int64_t thresholds[] = {500, 1000, 2000, 4000};
  PrintHeader("Ablation A3", "memory threshold sweep: spill I/O",
              "20k tuples/stream, punct inter-arrival 20; pages written+read "
              "per run");
  std::printf("%-12s %16s %16s %16s %16s\n", "mem_thresh", "xjoin_pages",
              "pjoin_pages", "xjoin_flushed", "pjoin_flushed");
  bool pjoin_always_less = true;
  for (int64_t t : thresholds) {
    JoinOptions xopts;
    xopts.runtime.memory_threshold_tuples = t;
    XJoin xjoin(g.schema_a, g.schema_b, xopts);
    RunStats xs = RunExperiment(&xjoin, g);
    const int64_t xpages = xjoin.state(0).io_stats().pages_written +
                           xjoin.state(0).io_stats().pages_read +
                           xjoin.state(1).io_stats().pages_written +
                           xjoin.state(1).io_stats().pages_read;

    JoinOptions popts;
    popts.runtime.purge_threshold = 1;
    popts.runtime.memory_threshold_tuples = t;
    PJoin pjoin(g.schema_a, g.schema_b, popts);
    RunStats ps = RunExperiment(&pjoin, g);
    const int64_t ppages = pjoin.state(0).io_stats().pages_written +
                           pjoin.state(0).io_stats().pages_read +
                           pjoin.state(1).io_stats().pages_written +
                           pjoin.state(1).io_stats().pages_read;

    std::printf("%-12lld %16lld %16lld %16lld %16lld\n",
                static_cast<long long>(t), static_cast<long long>(xpages),
                static_cast<long long>(ppages),
                static_cast<long long>(xs.counters.Get("flushed_tuples")),
                static_cast<long long>(ps.counters.Get("flushed_tuples")));
    if (ppages > xpages) pjoin_always_less = false;
    if (xs.results != ps.results) {
      PrintShapeCheck("identical result sets", false);
      return 1;
    }
  }
  PrintShapeCheck("PJoin never spills more than XJoin", pjoin_always_less);
  return 0;
}
