// Ablation A4: scan purge (the paper's algorithm; cost proportional to
// state size per purge run) vs the indexed purge extension (jump straight
// to the buckets named by constant punctuations).

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 10;
  cfg.punct_b = 10;
  GeneratedStreams g = cfg.Generate();

  auto run = [&](PurgeMode mode) {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;  // eager: worst case for scan purge
    opts.purge_mode = mode;
    PJoin join(g.schema_a, g.schema_b, opts);
    return RunExperiment(&join, g);
  };
  RunStats scan = run(PurgeMode::kScan);
  RunStats indexed = run(PurgeMode::kIndexed);

  PrintHeader("Ablation A4", "scan purge vs indexed purge",
              "30k tuples/stream, punct inter-arrival 10, eager purge");
  PrintMetric("scan purge: tuples scanned",
              static_cast<double>(scan.counters.Get("purge_scanned")));
  PrintMetric("indexed purge: tuples scanned",
              static_cast<double>(indexed.counters.Get("purge_scanned")));
  PrintMetric("scan purge wall time", scan.wall_micros / 1e6, "s");
  PrintMetric("indexed purge wall time", indexed.wall_micros / 1e6, "s");
  PrintShapeCheck("indexed purge scans at least 4x fewer tuples",
                  indexed.counters.Get("purge_scanned") * 4 <
                      scan.counters.Get("purge_scanned"));
  PrintShapeCheck("indexed purge is not slower end to end",
                  indexed.wall_micros <= scan.wall_micros +
                                             scan.wall_micros / 10);
  PrintShapeCheck("identical result sets", scan.results == indexed.results);
  return 0;
}
