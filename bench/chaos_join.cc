// Chaos micro-bench: PJoin under a hostile environment — contract-violating
// input streams (late tuples, malformed punctuations, duplicates, reorders,
// stalls) and flaky spill I/O (transient errors, short writes, a permanent
// write failure) — with the full defense stack enabled: ViolationPolicy::
// kDrop, RecoveringSpillStore (retry/resume/fallback), and event-based
// observability. Self-checking: the run must finish, match the sanitized
// reference result exactly, and account every injected fault.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_spill_store.h"
#include "fault/faulty_stream_source.h"
#include "gen/auction.h"
#include "join/pjoin.h"
#include "ops/pipeline.h"
#include "storage/recovering_spill_store.h"
#include "storage/simulated_disk.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

std::vector<std::string> Reference(const std::vector<StreamElement>& a,
                                   const std::vector<StreamElement>& b,
                                   const SchemaPtr& out_schema) {
  std::vector<std::string> out;
  for (const StreamElement& l : a) {
    if (!l.is_tuple()) continue;
    for (const StreamElement& r : b) {
      if (!r.is_tuple()) continue;
      if (l.tuple().field(0) == r.tuple().field(0)) {
        out.push_back(
            Tuple::Concat(l.tuple(), r.tuple(), out_schema).ToString());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main() {
  PrintHeader("Chaos", "PJoin under injected faults with full degradation",
              "auction workload, 4k bids; late/malformed/duplicate/reorder/"
              "stall stream faults both sides; transient + short-write + "
              "permanent-write spill faults; ViolationPolicy::kDrop; "
              "RecoveringSpillStore over FaultySpillStore(SimulatedDisk)");

  AuctionSpec aspec;
  aspec.num_bids = 4000;
  aspec.open_window = 24;
  aspec.close_mean_interarrival_bids = 80.0;
  AuctionStreams streams = GenerateAuction(aspec, /*seed=*/2004);

  FaultPlan plan;
  plan.seed = 0xC4A05;
  for (int s = 0; s < 2; ++s) {
    plan.stream[s].late_tuple_rate = 0.02;
    plan.stream[s].malformed_punct_rate = 0.01;
    plan.stream[s].duplicate_rate = 0.02;
    plan.stream[s].reorder_rate = 0.05;
    plan.stream[s].stall_rate = 0.005;
  }
  plan.io.transient_write_error_rate = 0.1;
  plan.io.transient_read_error_rate = 0.1;
  plan.io.short_write_rate = 0.1;
  plan.io.latency_spike_rate = 0.05;
  plan.io.permanent_write_failure_after = 40;

  auto injector = std::make_shared<FaultInjector>(plan.seed);
  PerturbedStream pa =
      PerturbStream(streams.open, 0, plan.stream[0], injector.get());
  PerturbedStream pb =
      PerturbStream(streams.bid, 0, plan.stream[1], injector.get());
  const int64_t injected_violations = pa.violations + pb.violations;

  std::vector<RecoveringSpillStore*> stores;
  int64_t io_error_events = 0;
  int64_t degraded_events = 0;
  auto sink = [&](const Event& e) {
    if (e.type == EventType::kIoError) ++io_error_events;
    if (e.type == EventType::kDegradedMode) ++degraded_events;
  };

  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kDrop;
  opts.runtime.memory_threshold_tuples = 16;
  opts.runtime.propagate_count_threshold = 8;
  opts.spill_factory = [&]() -> std::unique_ptr<SpillStore> {
    RecoveryOptions ropts;
    ropts.max_retries = 8;
    auto store = std::make_unique<RecoveringSpillStore>(
        std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                           plan.io, injector),
        ropts, sink);
    stores.push_back(store.get());
    return store;
  };

  PJoin join(streams.open_schema, streams.bid_schema, opts);
  std::vector<std::string> rows;
  join.set_result_callback(
      [&rows](const Tuple& t) { rows.push_back(t.ToString()); });

  Stopwatch watch;
  PipelineOptions popts;
  popts.stall_gap_micros = 3000;
  JoinPipeline pipe(&join, nullptr, popts);
  Status status = pipe.Run(pa.faulty, pb.faulty);
  const TimeMicros wall = watch.ElapsedMicros();
  std::sort(rows.begin(), rows.end());

  const auto reference =
      Reference(pa.sanitized, pb.sanitized, join.output_schema());

  int64_t io_errors = 0;
  int64_t retries = 0;
  int64_t recovered = 0;
  int64_t fallbacks = 0;
  int64_t migrated = 0;
  int64_t lost = 0;
  for (const RecoveringSpillStore* s : stores) {
    const RecoveryStats& rs = s->recovery_stats();
    io_errors += rs.io_errors;
    retries += rs.retries;
    recovered += rs.recovered_ops;
    fallbacks += rs.fallbacks;
    migrated += rs.records_migrated;
    lost += rs.records_lost;
  }

  PrintMetric("wall_time", static_cast<double>(wall) / 1000.0, "ms");
  PrintMetric("results", static_cast<double>(rows.size()));
  PrintMetric("injected_violations", static_cast<double>(injected_violations));
  PrintMetric("detected_violations",
              static_cast<double>(join.contract_violations()));
  PrintMetric("io_errors", static_cast<double>(io_errors));
  PrintMetric("io_retries", static_cast<double>(retries));
  PrintMetric("io_recovered_ops", static_cast<double>(recovered));
  PrintMetric("fallbacks", static_cast<double>(fallbacks));
  PrintMetric("records_migrated", static_cast<double>(migrated));
  PrintMetric("records_lost", static_cast<double>(lost));
  PrintMetric("io_error_events", static_cast<double>(io_error_events));
  PrintMetric("degraded_events", static_cast<double>(degraded_events));
  std::printf("injected faults: %s\n",
              injector->SnapshotCounters().ToString().c_str());

  bool ok = true;
  auto check = [&ok](const std::string& what, bool holds) {
    PrintShapeCheck(what, holds);
    ok = ok && holds;
  };
  check("run completes without error", status.ok());
  check("output == reference over sanitized inputs", rows == reference);
  check("every injected violation detected",
        join.contract_violations() == injected_violations);
  check("every I/O error raised an IoErrorEvent",
        io_error_events == io_errors);
  check("no records lost", lost == 0);
  check("permanent write failure forced a fallback",
        plan.io.permanent_write_failure_after < 0 || fallbacks > 0);
  return ok ? 0 : 1;
}
