// Figure 5: total tuples in the join state over time, PJoin (eager purge)
// vs XJoin. Punctuation inter-arrival: 40 tuples/punctuation on both
// streams. Paper: "the memory requirement for the PJoin state is almost
// insignificant compared to that of XJoin."

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 40;
  cfg.punct_b = 40;
  GeneratedStreams g = cfg.Generate();

  JoinOptions xopts;
  EnableStateSampling(&xopts);
  XJoin xjoin(g.schema_a, g.schema_b, xopts);
  RunStats xs = RunExperiment(&xjoin, g);

  JoinOptions popts;
  EnableStateSampling(&popts);
  popts.runtime.purge_threshold = 1;  // eager purge (PJoin-1)
  PJoin pjoin(g.schema_a, g.schema_b, popts);
  RunStats ps = RunExperiment(&pjoin, g);

  PrintHeader("Figure 5", "PJoin vs XJoin: memory overhead",
              "20k tuples/stream, punct inter-arrival 40 tuples/punct, "
              "eager purge");
  PrintTable("stream_s", xs.stream_micros, 20,
             {{"xjoin_state", &xs.state_vs_stream},
              {"pjoin1_state", &ps.state_vs_stream}});
  PrintMetric("xjoin max state", static_cast<double>(xs.max_state), "tuples");
  PrintMetric("pjoin-1 max state", static_cast<double>(ps.max_state),
              "tuples");
  PrintMetric("state ratio (xjoin/pjoin, mean)",
              xs.mean_state / std::max(1.0, ps.mean_state), "x");
  PrintShapeCheck(
      "PJoin state insignificant vs XJoin (mean ratio >= 10x)",
      xs.mean_state > 10.0 * ps.mean_state);
  PrintShapeCheck("identical result sets", xs.results == ps.results);
  return 0;
}
