// Figure 11: output progress for the asymmetric configurations of Fig 10.
// Paper: "the slower the punctuation arrival rate, the greater is the tuple
// output rate … slow punctuation arrival means a smaller number of purges
// and hence less overhead caused by purge."

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  const double b_rates[] = {10, 20, 40};
  std::vector<RunStats> runs;
  std::vector<int64_t> purge_runs;
  TimeMicros horizon = 0;
  for (double rate : b_rates) {
    ExperimentConfig cfg;
    cfg.num_tuples = 20000;
    cfg.punct_a = 10;
    cfg.punct_b = rate;
    GeneratedStreams g = cfg.Generate();
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    runs.push_back(RunExperiment(&join, g));
    purge_runs.push_back(runs.back().counters.Get("purge_runs"));
    horizon = std::max(horizon, runs.back().wall_micros);
  }

  PrintHeader("Figure 11", "asymmetric punctuation rates: output progress",
              "20k tuples/stream, eager purge, A punct=10, B punct=10/20/40; "
              "x-axis = processing wall time");
  PrintTable("wall_s", horizon, 20,
             {{"out_B10", &runs[0].output_vs_wall},
              {"out_B20", &runs[1].output_vs_wall},
              {"out_B40", &runs[2].output_vs_wall}});
  for (size_t i = 0; i < 3; ++i) {
    PrintMetric("purge runs @ B=" + std::to_string((int)b_rates[i]),
                static_cast<double>(purge_runs[i]));
    PrintMetric("wall time @ B=" + std::to_string((int)b_rates[i]),
                runs[i].wall_micros / 1e6, "s");
  }
  PrintShapeCheck("fewer punctuations => fewer purges (B40 < B10)",
                  purge_runs[2] < purge_runs[0]);
  return 0;
}
