// Ablation A2: on-the-fly dropping of covered arrivals (paper §4.3).
//
// The symmetric generator never produces a tuple whose key the opposite
// stream already punctuated (keys close globally), so this ablation uses
// the auction workload: the Open stream is key-unique and punctuates each
// item immediately, which covers *every* subsequent bid for that item —
// exactly the situation the paper describes ("most of the time when a B
// tuple is received, there already exists an A punctuation that can drop
// this B tuple on the fly").

#include "bench_util.h"
#include "gen/auction.h"
#include "join/pjoin.h"
#include "ops/pipeline.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

struct OtfRun {
  int64_t results = 0;
  int64_t otf_drops = 0;
  double bid_state_mean = 0.0;
  int64_t bid_state_max = 0;
};

OtfRun Run(const AuctionStreams& streams, bool otf) {
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  opts.drop_on_the_fly = otf;
  PJoin join(streams.open_schema, streams.bid_schema, opts);
  int64_t results = 0;
  join.set_result_callback([&results](const Tuple&) { ++results; });

  TimeSeries bid_state;
  PipelineOptions popts;
  popts.progress = [&](int64_t n) {
    if (n % 100 == 0) {
      bid_state.Record(join.last_arrival(), join.state(1).total_tuples());
    }
  };
  JoinPipeline pipe(&join, nullptr, popts);
  Status st = pipe.Run(streams.open, streams.bid);
  PJOIN_DCHECK(st.ok());

  OtfRun out;
  out.results = results;
  out.otf_drops = join.counters().Get("otf_drops");
  out.bid_state_mean = bid_state.MeanValue();
  out.bid_state_max = bid_state.MaxValue();
  return out;
}

}  // namespace

int main() {
  AuctionSpec spec;
  spec.num_bids = 30000;
  spec.open_window = 20;
  spec.close_mean_interarrival_bids = 40;
  AuctionStreams streams = GenerateAuction(spec, 2004);

  OtfRun with_otf = Run(streams, true);
  OtfRun without = Run(streams, false);

  PrintHeader("Ablation A2", "on-the-fly drop on/off (auction workload)",
              "30k bids, 20 items open, key-unique Open stream with derived "
              "punctuations");
  PrintMetric("otf drops (on)", static_cast<double>(with_otf.otf_drops));
  PrintMetric("otf drops (off)", static_cast<double>(without.otf_drops));
  PrintMetric("bid-state mean (otf on)", with_otf.bid_state_mean, "tuples");
  PrintMetric("bid-state mean (otf off)", without.bid_state_mean, "tuples");
  PrintMetric("bid-state max (otf on)",
              static_cast<double>(with_otf.bid_state_max), "tuples");
  PrintMetric("bid-state max (otf off)",
              static_cast<double>(without.bid_state_max), "tuples");
  PrintShapeCheck("most bids drop on the fly (>90% of arrivals)",
                  with_otf.otf_drops * 10 > spec.num_bids * 9);
  PrintShapeCheck("otf keeps the bid state near zero (mean < 1 tuple)",
                  with_otf.bid_state_mean < 1.0);
  PrintShapeCheck("identical result sets",
                  with_otf.results == without.results);
  return 0;
}
