// Figure 10: state requirement under asymmetric punctuation inter-arrival.
// Stream A is fixed at 10 tuples/punctuation; stream B varies over
// {10, 20, 40}. Paper: "the larger the difference in the punctuation
// inter-arrival of the two input streams, the larger will be the memory
// requirement" — and the B state stays insignificant, because fast A
// punctuations drop most B tuples on the fly.

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  const double b_rates[] = {10, 20, 40};
  std::vector<RunStats> runs;
  std::vector<TimeSeries> a_states(3);
  std::vector<TimeSeries> b_states(3);
  TimeMicros horizon = 0;
  for (size_t i = 0; i < 3; ++i) {
    ExperimentConfig cfg;
    cfg.num_tuples = 20000;
    cfg.punct_a = 10;
    cfg.punct_b = b_rates[i];
    GeneratedStreams g = cfg.Generate();
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    TimeSeries* a_series = &a_states[i];
    TimeSeries* b_series = &b_states[i];
    runs.push_back(RunExperiment(
        &join, g, 250, [a_series, b_series](const JoinOperator& j) {
          a_series->Record(j.last_arrival(), j.state(0).total_tuples());
          b_series->Record(j.last_arrival(), j.state(1).total_tuples());
        }));
    horizon = std::max(horizon, runs.back().stream_micros);
  }

  PrintHeader("Figure 10", "asymmetric punctuation rates: state size",
              "20k tuples/stream, eager purge, A punct=10, B punct=10/20/40");
  PrintTable("stream_s", horizon, 20,
             {{"total_B10", &runs[0].state_vs_stream},
              {"total_B20", &runs[1].state_vs_stream},
              {"total_B40", &runs[2].state_vs_stream}});
  for (size_t i = 0; i < 3; ++i) {
    PrintMetric("A-state mean @ B=" + std::to_string((int)b_rates[i]),
                a_states[i].MeanValue(), "tuples");
    PrintMetric("B-state mean @ B=" + std::to_string((int)b_rates[i]),
                b_states[i].MeanValue(), "tuples");
  }
  PrintShapeCheck(
      "state grows with the rate difference (B10 < B20 < B40)",
      runs[0].mean_state < runs[1].mean_state &&
          runs[1].mean_state < runs[2].mean_state);
  PrintShapeCheck(
      "B state insignificant vs A state in the asymmetric case (B=40)",
      b_states[2].MeanValue() * 5 < a_states[2].MeanValue());
  return 0;
}
