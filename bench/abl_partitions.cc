// Ablation A6: number of hash partitions. The probe scans one partition's
// bucket per arrival, so XJoin's probe cost falls with more partitions
// until the per-key chains dominate; PJoin's tiny state barely cares. This
// is the design knob DESIGN.md calls out for the state layout.

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 20;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  PrintHeader("Ablation A6", "hash partition count",
              "20k tuples/stream, punct inter-arrival 20");
  std::printf("%-12s %16s %16s %16s %16s\n", "partitions", "xjoin_cmp",
              "pjoin_cmp", "xjoin_wall_ms", "pjoin_wall_ms");
  int64_t xjoin_cmp_4 = 0;
  int64_t xjoin_cmp_256 = 0;
  int64_t results = -1;
  bool results_consistent = true;
  for (int partitions : {4, 16, 64, 256}) {
    // This ablation measures the paper's linear bucket scan, whose probe
    // cost is what the partition count trades against.
    JoinOptions xopts;
    xopts.num_partitions = partitions;
    xopts.indexed_probe = false;
    XJoin xjoin(g.schema_a, g.schema_b, xopts);
    RunStats xs = RunExperiment(&xjoin, g);

    JoinOptions popts;
    popts.num_partitions = partitions;
    popts.runtime.purge_threshold = 1;
    popts.indexed_probe = false;
    PJoin pjoin(g.schema_a, g.schema_b, popts);
    RunStats ps = RunExperiment(&pjoin, g);

    std::printf("%-12d %16lld %16lld %16.1f %16.1f\n", partitions,
                static_cast<long long>(xs.counters.Get("probe_comparisons")),
                static_cast<long long>(ps.counters.Get("probe_comparisons")),
                xs.wall_micros / 1e3, ps.wall_micros / 1e3);
    if (partitions == 4) xjoin_cmp_4 = xs.counters.Get("probe_comparisons");
    if (partitions == 256) {
      xjoin_cmp_256 = xs.counters.Get("probe_comparisons");
    }
    if (results < 0) results = xs.results;
    results_consistent = results_consistent && xs.results == results &&
                         ps.results == results;
  }
  PrintShapeCheck("XJoin probe cost falls sharply with partition count",
                  xjoin_cmp_256 * 4 < xjoin_cmp_4);
  PrintShapeCheck("results invariant to partition count", results_consistent);
  return 0;
}
