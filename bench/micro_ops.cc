// Micro-benchmarks (google-benchmark) for the hot operations: pattern
// matching, punctuation-set probing, memory-join probing, purge scanning,
// index building, tuple-entry serialization, the SPSC ring transport, and
// batched vs per-element join dispatch.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/spsc_ring.h"
#include "gen/stream_generator.h"
#include "join/hash_state.h"
#include "join/pjoin.h"
#include "join/punct_index.h"
#include "punct/punctuation_set.h"
#include "storage/simulated_disk.h"
#include "tuple/tuple.h"

namespace pjoin {
namespace {

SchemaPtr KP() {
  return Schema::Make({{"key", ValueType::kInt64}, {"p", ValueType::kInt64}});
}

void BM_PatternMatchConstant(benchmark::State& state) {
  Pattern p = Pattern::Constant(Value(int64_t{42}));
  Value v(int64_t{42});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(v));
  }
}
BENCHMARK(BM_PatternMatchConstant);

void BM_PatternMatchRange(benchmark::State& state) {
  Pattern p = Pattern::Range(Value(int64_t{10}), Value(int64_t{90}));
  Value v(int64_t{55});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(v));
  }
}
BENCHMARK(BM_PatternMatchRange);

void BM_PatternMatchEnum(benchmark::State& state) {
  std::vector<Value> members;
  for (int64_t i = 0; i < state.range(0); ++i) members.emplace_back(i * 2);
  Pattern p = Pattern::EnumList(members);
  Value v(int64_t{state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(v));
  }
}
BENCHMARK(BM_PatternMatchEnum)->Arg(4)->Arg(64)->Arg(1024);

void BM_PatternAnd(benchmark::State& state) {
  Pattern a = Pattern::Range(Value(int64_t{0}), Value(int64_t{100}));
  Pattern b = Pattern::Range(Value(int64_t{50}), Value(int64_t{150}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pattern::And(a, b));
  }
}
BENCHMARK(BM_PatternAnd);

void BM_PunctSetMatchKey(benchmark::State& state) {
  PunctuationSet ps(0);
  for (int64_t i = 0; i < state.range(0); ++i) {
    const Result<int64_t> pid = ps.Add(
        Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(i))), i);
    PJOIN_DCHECK(pid.ok());
  }
  Value probe(state.range(0) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.SetMatchKey(probe));
  }
}
BENCHMARK(BM_PunctSetMatchKey)->Arg(16)->Arg(256)->Arg(4096);

HashState MakeState(int64_t tuples, int64_t distinct_keys,
                    bool indexed = true) {
  SchemaPtr schema = KP();
  HashState st("bench", schema, 0, 16, std::make_unique<SimulatedDisk>(),
               indexed);
  for (int64_t i = 0; i < tuples; ++i) {
    TupleEntry e;
    e.tuple = Tuple(schema, {Value(i % distinct_keys), Value(i)});
    e.ats = i;
    st.InsertMemory(std::move(e));
  }
  return st;
}

void BM_MemoryProbe(benchmark::State& state) {
  HashState st = MakeState(state.range(0), 20);
  const Value key(int64_t{7});
  const int p = st.PartitionOf(key);
  for (auto _ : state) {
    int64_t matches = 0;
    for (const TupleEntry& e : st.memory(p)) {
      if (st.KeyOf(e.tuple) == key) ++matches;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(st.memory(p).size()));
}
BENCHMARK(BM_MemoryProbe)->Arg(1000)->Arg(10000)->Arg(100000);

// ---- Scan vs. indexed bucket probe (docs/PERFORMANCE.md) ----
//
// Arg = entries per partition (the state spreads Arg * 16 tuples over its 16
// partitions); 40 distinct keys, so one probe matches ~Arg * 16 / 40 entries.

constexpr int64_t kProbePartitions = 16;
constexpr int64_t kProbeKeys = 40;

void BM_ProbeScanBucket(benchmark::State& state) {
  HashState st = MakeState(state.range(0) * kProbePartitions, kProbeKeys,
                           /*indexed=*/false);
  const Value key(int64_t{7});
  const uint64_t key_hash = key.Hash();
  const int p = st.PartitionOfHash(key_hash);
  for (auto _ : state) {
    int64_t matches = 0;
    benchmark::DoNotOptimize(st.ForEachMemoryMatch(
        p, key, key_hash, [&](const TupleEntry&) { ++matches; }));
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(st.memory(p).size()));
}
BENCHMARK(BM_ProbeScanBucket)->Arg(10)->Arg(100)->Arg(1000);

void BM_ProbeIndexedBucket(benchmark::State& state) {
  HashState st = MakeState(state.range(0) * kProbePartitions, kProbeKeys,
                           /*indexed=*/true);
  const Value key(int64_t{7});
  const uint64_t key_hash = key.Hash();
  const int p = st.PartitionOfHash(key_hash);
  for (auto _ : state) {
    int64_t matches = 0;
    benchmark::DoNotOptimize(st.ForEachMemoryMatch(
        p, key, key_hash, [&](const TupleEntry&) { ++matches; }));
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(st.memory(p).size()));
}
BENCHMARK(BM_ProbeIndexedBucket)->Arg(10)->Arg(100)->Arg(1000);

void BM_PurgeScan(benchmark::State& state) {
  PunctuationSet ps(0);
  for (int64_t k = 0; k < 10; ++k) {
    const Result<int64_t> pid = ps.Add(
        Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(k))), k);
    PJOIN_DCHECK(pid.ok());
  }
  HashState st = MakeState(state.range(0), 40);
  for (auto _ : state) {
    int64_t would_purge = 0;
    for (int p = 0; p < st.num_partitions(); ++p) {
      for (const TupleEntry& e : st.memory(p)) {
        if (ps.SetMatchKey(st.KeyOf(e.tuple))) ++would_purge;
      }
    }
    benchmark::DoNotOptimize(would_purge);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PurgeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexBuild(benchmark::State& state) {
  SchemaPtr schema = KP();
  for (auto _ : state) {
    state.PauseTiming();
    PunctuationSet ps(0);
    for (int64_t k = 0; k < 20; ++k) {
      const Result<int64_t> pid = ps.Add(
          Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(k))), k);
      PJOIN_DCHECK(pid.ok());
    }
    HashState st = MakeState(state.range(0), 40);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        PunctuationIndexer::BuildIndex(&ps, &st, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(10000);

void BM_TupleEntrySerialize(benchmark::State& state) {
  TupleEntry e;
  e.tuple = Tuple(KP(), {Value(int64_t{12345}), Value(int64_t{67890})});
  e.ats = 1;
  e.dts = 2;
  e.pid = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Serialize());
  }
}
BENCHMARK(BM_TupleEntrySerialize);

void BM_TupleEntryDeserialize(benchmark::State& state) {
  SchemaPtr schema = KP();
  TupleEntry e;
  e.tuple = Tuple(schema, {Value(int64_t{12345}), Value(int64_t{67890})});
  const std::string record = e.Serialize();
  for (auto _ : state) {
    auto r = TupleEntry::Deserialize(record, schema);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TupleEntryDeserialize);

// ---- SPSC ring transport (common/spsc_ring.h) ----
//
// The parallel pipeline moves every element over these rings, so the
// per-slot cost bounds the dataflow spine's overhead. Single-threaded
// push/pop is the right microcosting: it isolates the ring's own atomics
// and cache traffic from scheduler noise (the 1-vCPU CI runner cannot
// time genuine cross-core handoff anyway).

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int64_t> ring(static_cast<size_t>(state.range(0)));
  int64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(int64_t{42}));
    benchmark::DoNotOptimize(ring.TryPop(&out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop)->Arg(64)->Arg(4096);

void BM_SpscRingBurst(benchmark::State& state) {
  // Fill-then-drain at capacity: the worst-case working set (every slot
  // touched) instead of BM_SpscRingPushPop's single hot slot.
  const auto burst = static_cast<size_t>(state.range(0));
  SpscRing<int64_t> ring(burst);
  int64_t out = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.TryPush(static_cast<int64_t>(i)));
    }
    for (size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.TryPop(&out));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(burst));
}
BENCHMARK(BM_SpscRingBurst)->Arg(64)->Arg(4096);

// ---- Batched vs per-element join dispatch (join_base.h ProcessBatch) ----
//
// The same generated element sequence through one PJoin, fed either one
// OnElement at a time or as a single columnar ElementBatch with
// pre-computed key hashes — the two shard dispatch modes of
// ops/parallel_pipeline.h (options.batched_probe). The batch path's win is
// hashing each key once and flushing hot counters per batch.

struct DispatchFixture {
  GeneratedStreams streams;
  std::vector<const StreamElement*> elements;
  std::vector<int8_t> sides;
  std::vector<uint64_t> hashes;

  explicit DispatchFixture(int64_t tuples) {
    DomainSpec domain;
    domain.window_size = 8192;
    StreamSpec spec;
    spec.num_tuples = tuples;
    spec.punct_mean_interarrival_tuples = 50.0;
    spec.flush_punctuations_at_end = false;
    streams = GenerateStreams(domain, spec, spec, 4242);
    // Interleave the two sides by arrival, as the router would, hashing
    // each tuple's join key once (the batch contract).
    const auto probe = MakeJoin();
    const size_t key_index[2] = {probe->state(0).key_index(),
                                 probe->state(1).key_index()};
    size_t ia = 0, ib = 0;
    while (ia < streams.a.size() || ib < streams.b.size()) {
      const bool take_a =
          ib >= streams.b.size() ||
          (ia < streams.a.size() &&
           streams.a[ia].arrival() <= streams.b[ib].arrival());
      const StreamElement& e = take_a ? streams.a[ia++] : streams.b[ib++];
      const int side = take_a ? 0 : 1;
      elements.push_back(&e);
      sides.push_back(static_cast<int8_t>(side));
      hashes.push_back(
          e.is_tuple() ? e.tuple().field(key_index[side]).Hash() : 0);
    }
  }

  std::unique_ptr<PJoin> MakeJoin() const {
    JoinOptions opts;
    opts.num_partitions = 16;
    auto join =
        std::make_unique<PJoin>(streams.schema_a, streams.schema_b, opts);
    join->set_result_callback([](const Tuple&) {});
    return join;
  }
};

void BM_DispatchPerElement(benchmark::State& state) {
  const DispatchFixture fx(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto join = fx.MakeJoin();
    state.ResumeTiming();
    for (size_t i = 0; i < fx.elements.size(); ++i) {
      const Status st = join->OnElement(fx.sides[i], *fx.elements[i]);
      PJOIN_DCHECK(st.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.elements.size()));
}
BENCHMARK(BM_DispatchPerElement)->Arg(2000);

void BM_DispatchBatched(benchmark::State& state) {
  const DispatchFixture fx(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto join = fx.MakeJoin();
    state.ResumeTiming();
    const Status st = join->ProcessBatch(ElementBatch{
        fx.elements.data(), fx.sides.data(), fx.hashes.data(),
        fx.elements.size()});
    PJOIN_DCHECK(st.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.elements.size()));
}
BENCHMARK(BM_DispatchBatched)->Arg(2000);

void BM_SpillRoundtrip(benchmark::State& state) {
  SchemaPtr schema = KP();
  std::vector<std::string> records;
  for (int i = 0; i < 256; ++i) {
    TupleEntry e;
    e.tuple = Tuple(schema, {Value(int64_t{i}), Value(int64_t{i * 7})});
    records.push_back(e.Serialize());
  }
  for (auto _ : state) {
    SimulatedDisk disk;
    const Status append_status = disk.AppendBatch(0, records);
    PJOIN_DCHECK(append_status.ok());
    auto out = disk.ReadPartition(0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SpillRoundtrip);

}  // namespace
}  // namespace pjoin
