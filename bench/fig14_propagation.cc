// Figure 14: punctuation propagation over time in the ideal case — both
// streams punctuate in the same order with the same (constant) granularity,
// inter-arrival 40 tuples/punctuation; PJoin propagates after each pair of
// equivalent punctuations (count propagation threshold 2). Paper: "PJoin
// can guarantee a steady punctuation propagation rate in the ideal case."

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 40;
  cfg.punct_b = 40;
  GeneratedStreams g = cfg.Generate();

  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  // "start propagation after a pair of equivalent punctuations has been
  // received from both input streams": count threshold 2 with eager index
  // building for steady (non-bursty) release.
  opts.runtime.propagate_count_threshold = 2;
  opts.eager_index_build = true;
  PJoin join(g.schema_a, g.schema_b, opts);
  RunStats rs = RunExperiment(&join, g, /*sample_every=*/100);

  PrintHeader("Figure 14", "punctuation propagation over time",
              "20k tuples/stream, punct inter-arrival 40 both streams, "
              "matched order & granularity, propagate per punctuation pair");
  PrintTable("stream_s", rs.stream_micros, 20,
             {{"puncts_out", &rs.puncts_vs_stream}});
  const int64_t puncts_in = rs.counters.Get("puncts_in");
  PrintMetric("punctuations in", static_cast<double>(puncts_in));
  PrintMetric("punctuations propagated", static_cast<double>(rs.puncts_out));

  // Steadiness: the propagated count at the midpoint should be close to
  // half the final count.
  auto grid = rs.puncts_vs_stream.Resample(rs.stream_micros, 2);
  const double mid = static_cast<double>(grid[0].value);
  const double total = static_cast<double>(grid[1].value);
  PrintMetric("midpoint fraction", total > 0 ? mid / total : 0.0);
  PrintShapeCheck("steady propagation (midpoint fraction in [0.35, 0.65])",
                  total > 0 && mid / total > 0.35 && mid / total < 0.65);
  PrintShapeCheck("most input punctuations eventually propagate (>60%)",
                  rs.puncts_out * 10 > puncts_in * 6);
  return 0;
}
