// Figure 9: output progress for purge thresholds 1 / 100 / 400 / 800 at
// punctuation inter-arrival 10. Paper: "up to some limit, the higher the
// purge threshold, the higher the output rate … when the increased cost of
// probing the state exceeds the cost of purge, we start to lose on
// performance" — i.e. a middle threshold (100) beats both eager (1) and
// very lazy (400/800).

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 10;
  cfg.punct_b = 10;
  GeneratedStreams g = cfg.Generate();

  const int64_t thresholds[] = {1, 100, 400, 800};
  std::vector<RunStats> runs;
  TimeMicros horizon = 0;
  for (int64_t t : thresholds) {
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = t;
    // The figure's probe-vs-purge tradeoff is the paper's scan cost model;
    // indexed probing would flatten the lazy-threshold probe penalty.
    opts.indexed_probe = false;
    PJoin join(g.schema_a, g.schema_b, opts);
    runs.push_back(RunExperiment(&join, g));
    horizon = std::max(horizon, runs.back().wall_micros);
  }

  PrintHeader("Figure 9", "purge threshold sweep: output progress",
              "30k tuples/stream, punct inter-arrival 10; PJoin-1/100/400/"
              "800; x-axis = processing wall time");
  PrintTable("wall_s", horizon, 20,
             {{"pjoin1", &runs[0].output_vs_wall},
              {"pjoin100", &runs[1].output_vs_wall},
              {"pjoin400", &runs[2].output_vs_wall},
              {"pjoin800", &runs[3].output_vs_wall}});
  for (size_t i = 0; i < runs.size(); ++i) {
    PrintMetric("wall time @ threshold " + std::to_string(thresholds[i]),
                runs[i].wall_micros / 1e6, "s");
    PrintMetric("  purge scan cost",
                static_cast<double>(runs[i].counters.Get("purge_scanned")),
                "tuples scanned");
    PrintMetric("  probe cost",
                static_cast<double>(
                    runs[i].counters.Get("probe_comparisons")),
                "comparisons");
  }
  PrintShapeCheck("PJoin-100 faster than eager PJoin-1",
                  runs[1].wall_micros < runs[0].wall_micros);
  PrintShapeCheck("PJoin-100 faster than PJoin-800",
                  runs[1].wall_micros < runs[3].wall_micros);
  PrintShapeCheck("identical result sets across thresholds",
                  runs[0].results == runs[1].results &&
                      runs[1].results == runs[2].results &&
                      runs[2].results == runs[3].results);
  return 0;
}
