// Ablation A8: key skew. Zipf-skewed arrivals concentrate load on the
// newest keys, imbalancing partitions; relocation (which flushes the
// largest memory partition) and purging must cope. Results must be
// identical; spill traffic shifts.

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

GeneratedStreams Make(double zipf_s) {
  DomainSpec d;
  d.window_size = 20;
  StreamSpec spec;
  spec.num_tuples = 20000;
  spec.punct_mean_interarrival_tuples = 20;
  spec.zipf_s = zipf_s;
  return GenerateStreams(d, spec, spec, 4242);
}

}  // namespace

int main() {
  PrintHeader("Ablation A8", "key skew (Zipf) vs uniform arrivals",
              "20k tuples/stream, punct inter-arrival 20, eager purge, "
              "memory threshold 1000 tuples");
  std::printf("%-10s %14s %14s %14s %14s\n", "zipf_s", "results",
              "mean_state", "relocations", "flushed");
  double prev_results = -1;
  bool state_grows = true;
  double last_mean = -1;
  for (double s : {0.0, 0.8, 1.5}) {
    GeneratedStreams g = Make(s);
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = 1;
    opts.runtime.memory_threshold_tuples = 1000;
    PJoin join(g.schema_a, g.schema_b, opts);
    RunStats rs = RunExperiment(&join, g);
    std::printf("%-10.1f %14lld %14.1f %14lld %14lld\n", s,
                static_cast<long long>(rs.results), rs.mean_state,
                static_cast<long long>(rs.counters.Get("relocations")),
                static_cast<long long>(rs.counters.Get("flushed_tuples")));
    // Skew changes the result count (different key frequencies) but every
    // run must remain internally exact; cross-check one skew level against
    // an XJoin run on the same streams.
    XJoin xjoin(g.schema_a, g.schema_b);
    RunStats xs = RunExperiment(&xjoin, g);
    if (xs.results != rs.results) {
      PrintShapeCheck("pjoin/xjoin agree under skew", false);
      return 1;
    }
    (void)prev_results;
    prev_results = static_cast<double>(rs.results);
    if (last_mean >= 0 && rs.mean_state > last_mean * 4) state_grows = false;
    last_mean = rs.mean_state;
  }
  PrintShapeCheck("pjoin/xjoin agree under skew", true);
  PrintShapeCheck("state stays in the same ballpark across skew levels",
                  state_grows);
  return 0;
}
