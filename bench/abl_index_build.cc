// Ablation A1: eager vs lazy punctuation index building (paper §3.5).
// Eager building pays a scan per punctuation but releases punctuations
// steadily; lazy building batches the scans (fewer tuples scanned per
// punctuation) at the cost of burstier propagation.

#include <unordered_map>

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

struct IndexRun {
  RunStats stats;
  /// Release latency in stream time: output punctuation minus the arrival
  /// of the latest input punctuation for the same key.
  Histogram latency_micros;
};

IndexRun Run(const GeneratedStreams& g, bool eager_index,
             bool eager_propagation = false) {
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  opts.runtime.propagate_count_threshold = 8;
  opts.eager_index_build = eager_index;
  opts.eager_propagation = eager_propagation;
  PJoin join(g.schema_a, g.schema_b, opts);

  // Arrival time of the latest input punctuation per key (constant-pattern
  // punctuations only, which is all this workload produces).
  std::unordered_map<int64_t, TimeMicros> punct_arrival;
  for (const auto* stream : {&g.a, &g.b}) {
    for (const StreamElement& e : *stream) {
      if (!e.is_punctuation()) continue;
      const Pattern& p = e.punctuation().pattern(0);
      if (p.IsConstant()) {
        auto& at = punct_arrival[p.constant().AsInt64()];
        at = std::max(at, e.arrival());
      }
    }
  }

  IndexRun out;
  out.stats = RunExperiment(
      &join, g, 50, nullptr, [&](const Punctuation& p) {
        const Pattern& key_pattern = p.pattern(0);
        if (!key_pattern.IsConstant()) return;
        auto it = punct_arrival.find(key_pattern.constant().AsInt64());
        if (it != punct_arrival.end()) {
          out.latency_micros.Add(
              std::max<int64_t>(0, join.last_arrival() - it->second));
        }
      });
  return out;
}

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.punct_a = 20;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  IndexRun eager = Run(g, true);
  IndexRun lazy = Run(g, false);
  IndexRun eager_prop = Run(g, true, /*eager_propagation=*/true);

  PrintHeader("Ablation A1", "eager vs lazy index building",
              "20k tuples/stream, punct inter-arrival 20, propagation every "
              "8 punctuations");
  PrintMetric("eager index scans",
              static_cast<double>(eager.stats.counters.Get("index_scans")));
  PrintMetric("lazy index scans",
              static_cast<double>(lazy.stats.counters.Get("index_scans")));
  PrintMetric(
      "eager tuples scanned",
      static_cast<double>(eager.stats.counters.Get("index_scanned_tuples")));
  PrintMetric(
      "lazy tuples scanned",
      static_cast<double>(lazy.stats.counters.Get("index_scanned_tuples")));
  PrintMetric("eager puncts propagated",
              static_cast<double>(eager.stats.puncts_out));
  PrintMetric("lazy puncts propagated",
              static_cast<double>(lazy.stats.puncts_out));
  std::printf("  release latency (stream us), eager index:       %s\n",
              eager.latency_micros.ToString().c_str());
  std::printf("  release latency (stream us), lazy index:        %s\n",
              lazy.latency_micros.ToString().c_str());
  std::printf("  release latency (stream us), eager propagation: %s\n",
              eager_prop.latency_micros.ToString().c_str());
  PrintShapeCheck("same propagation outcome",
                  eager.stats.puncts_out == lazy.stats.puncts_out &&
                      eager.stats.puncts_out == eager_prop.stats.puncts_out);
  PrintShapeCheck("lazy batches the index scans (fewer scan passes)",
                  lazy.stats.counters.Get("index_scans") <
                      eager.stats.counters.Get("index_scans"));
  PrintShapeCheck(
      "eager propagation halves the median release latency",
      eager_prop.latency_micros.Percentile(0.5) * 2 <=
          eager.latency_micros.Percentile(0.5));
  PrintShapeCheck("identical result sets",
                  eager.stats.results == lazy.stats.results &&
                      eager.stats.results == eager_prop.stats.results);
  return 0;
}
