// Ablation A11: adaptive purge-threshold tuning. Figure 9 shows the purge
// threshold has a sweet spot that depends on the workload; the paper leaves
// "finding an appropriate purge threshold" as an open task. The
// PurgeThresholdTuner closes the loop using the runtime-tunable monitor
// parameters (§3.6): it should land near the best static setting without
// being told the workload.

#include "bench_util.h"
#include "join/purge_tuner.h"
#include "ops/pipeline.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

struct TuneRun {
  int64_t total_cost = 0;  // purge scans + probe comparisons
  TimeMicros wall = 0;
  int64_t final_threshold = 0;
};

TuneRun Run(const GeneratedStreams& g, int64_t static_threshold,
            bool adaptive) {
  JoinOptions opts;
  opts.runtime.purge_threshold = static_threshold;
  PJoin join(g.schema_a, g.schema_b, opts);
  PurgeThresholdTuner::Options topts;
  topts.interval = 500;
  PurgeThresholdTuner tuner(&join, topts);

  Stopwatch watch;
  PipelineOptions popts;
  if (adaptive) {
    popts.progress = [&tuner](int64_t) { tuner.Observe(); };
  }
  JoinPipeline pipe(&join, nullptr, popts);
  Status st = pipe.Run(g.a, g.b);
  PJOIN_DCHECK(st.ok());

  TuneRun out;
  out.wall = watch.ElapsedMicros();
  out.total_cost = join.counters().Get("purge_scanned") +
                   join.counters().Get("probe_comparisons");
  out.final_threshold = tuner.current_threshold();
  return out;
}

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 10;
  cfg.punct_b = 10;
  GeneratedStreams g = cfg.Generate();

  PrintHeader("Ablation A11", "adaptive purge-threshold tuning",
              "30k tuples/stream, punct inter-arrival 10; tuner starts "
              "eager (threshold 1)");
  std::printf("%-22s %16s %14s %14s\n", "configuration", "total_cost",
              "wall_ms", "final_thresh");
  TuneRun best{INT64_MAX, 0, 0};
  for (int64_t t : {1, 100, 800}) {
    TuneRun r = Run(g, t, /*adaptive=*/false);
    std::printf("%-22s %16lld %14.1f %14lld\n",
                ("static-" + std::to_string(t)).c_str(),
                static_cast<long long>(r.total_cost), r.wall / 1e3,
                static_cast<long long>(t));
    if (r.total_cost < best.total_cost) best = r;
  }
  TuneRun tuned = Run(g, 1, /*adaptive=*/true);
  std::printf("%-22s %16lld %14.1f %14lld\n", "adaptive (from 1)",
              static_cast<long long>(tuned.total_cost), tuned.wall / 1e3,
              static_cast<long long>(tuned.final_threshold));

  TuneRun eager = Run(g, 1, /*adaptive=*/false);
  PrintShapeCheck("tuner escapes the eager setting",
                  tuned.final_threshold > 1);
  PrintShapeCheck("tuned cost beats eager",
                  tuned.total_cost < eager.total_cost);
  PrintShapeCheck("tuned cost within 3x of the best static setting",
                  tuned.total_cost < best.total_cost * 3);
  return 0;
}
