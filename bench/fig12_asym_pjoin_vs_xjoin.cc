// Figure 12: asymmetric rates (A punct=10, B punct=20), PJoin-1 vs XJoin vs
// lazy PJoin. Paper: "the output rate of PJoin with the eager purge
// (PJoin-1) lags behind that of XJoin … the lazy purge together with an
// appropriate setting of the purge threshold … will make the output rate of
// PJoin better or at least equivalent to that of XJoin."

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 10;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  // Paper cost model: both operators probe by linear bucket scan.
  JoinOptions xopts;
  xopts.indexed_probe = false;
  XJoin xjoin(g.schema_a, g.schema_b, xopts);
  RunStats xs = RunExperiment(&xjoin, g);

  auto run_pjoin = [&](int64_t threshold) {
    JoinOptions opts;
    opts.runtime.purge_threshold = threshold;
    opts.indexed_probe = false;
    PJoin join(g.schema_a, g.schema_b, opts);
    return RunExperiment(&join, g);
  };
  RunStats eager = run_pjoin(1);
  RunStats lazy = run_pjoin(200);

  const TimeMicros horizon = std::max(
      {xs.wall_micros, eager.wall_micros, lazy.wall_micros});
  PrintHeader("Figure 12", "asymmetric rates: PJoin vs XJoin output",
              "30k tuples/stream, A punct=10, B punct=20; PJoin-1 vs XJoin "
              "vs PJoin-200; x-axis = processing wall time");
  PrintTable("wall_s", horizon, 20,
             {{"pjoin1", &eager.output_vs_wall},
              {"xjoin", &xs.output_vs_wall},
              {"pjoin200", &lazy.output_vs_wall}});
  PrintMetric("pjoin-1 wall time", eager.wall_micros / 1e6, "s");
  PrintMetric("xjoin wall time", xs.wall_micros / 1e6, "s");
  PrintMetric("pjoin-200 wall time", lazy.wall_micros / 1e6, "s");
  // The paper's claim is about the output *rate*: compare the cumulative
  // output curves point by point over the common horizon.
  const int kBuckets = 20;
  auto xg = xs.output_vs_wall.Resample(horizon, kBuckets);
  auto eg = eager.output_vs_wall.Resample(horizon, kBuckets);
  auto lg = lazy.output_vs_wall.Resample(horizon, kBuckets);
  int eager_behind = 0;
  int lazy_ahead = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto i = static_cast<size_t>(b);
    if (eg[i].value <= xg[i].value) ++eager_behind;
    if (lg[i].value >= xg[i].value) ++lazy_ahead;
  }
  PrintMetric("buckets where PJoin-1 trails XJoin",
              static_cast<double>(eager_behind), "/20");
  PrintMetric("buckets where PJoin-200 >= XJoin",
              static_cast<double>(lazy_ahead), "/20");
  PrintShapeCheck("eager PJoin-1's output lags behind XJoin (purge cost)",
                  eager_behind >= 16);
  PrintShapeCheck(
      "lazy PJoin's output curve at least matches XJoin's",
      lazy_ahead >= 16);
  PrintShapeCheck("identical result sets",
                  xs.results == eager.results && xs.results == lazy.results);
  return 0;
}
