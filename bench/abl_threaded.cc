// Ablation A9: serial vs threaded execution. The threaded pipeline runs
// one producer thread per input (delivering into StreamBuffers) and the
// join on the consumer thread — the deployment shape of a real stream
// system. Results must be identical; this measures the coordination
// overhead and the stall-driven background work.

#include "bench_util.h"
#include "join/pjoin.h"
#include "ops/threaded_pipeline.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 20;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  // Serial baseline.
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  PJoin serial(g.schema_a, g.schema_b, opts);
  RunStats serial_stats = RunExperiment(&serial, g);

  // Threaded run.
  PJoin threaded(g.schema_a, g.schema_b, opts);
  int64_t threaded_results = 0;
  threaded.set_result_callback(
      [&threaded_results](const Tuple&) { ++threaded_results; });
  Stopwatch watch;
  ThreadedJoinPipeline pipeline(&threaded);
  Status st = pipeline.Run(g.a, g.b);
  PJOIN_DCHECK(st.ok());
  const TimeMicros threaded_wall = watch.ElapsedMicros();

  PrintHeader("Ablation A9", "serial vs threaded pipeline",
              "30k tuples/stream, punct inter-arrival 20, eager purge");
  PrintMetric("serial wall time", serial_stats.wall_micros / 1e6, "s");
  PrintMetric("threaded wall time", threaded_wall / 1e6, "s");
  PrintMetric("threaded stalls reported",
              static_cast<double>(pipeline.stalls_reported()));
  PrintMetric("serial results", static_cast<double>(serial_stats.results));
  PrintMetric("threaded results", static_cast<double>(threaded_results));
  PrintShapeCheck("identical result counts",
                  serial_stats.results == threaded_results);
  PrintShapeCheck("threaded overhead below 5x of serial",
                  threaded_wall < serial_stats.wall_micros * 5 +
                                      100 * kMicrosPerMilli);
  return 0;
}
