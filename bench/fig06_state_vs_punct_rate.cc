// Figure 6: PJoin (eager purge) state size over time for punctuation
// inter-arrivals of 10, 20 and 30 tuples/punctuation. Paper: "as the
// punctuation inter-arrival increases, the average size of the PJoin state
// becomes larger correspondingly."

#include "bench_util.h"
#include "join/pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  const double rates[] = {10, 20, 30};
  std::vector<RunStats> runs;
  TimeMicros horizon = 0;
  for (double rate : rates) {
    ExperimentConfig cfg;
    cfg.num_tuples = 20000;
    cfg.punct_a = rate;
    cfg.punct_b = rate;
    GeneratedStreams g = cfg.Generate();
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    runs.push_back(RunExperiment(&join, g));
    horizon = std::max(horizon, runs.back().stream_micros);
  }

  PrintHeader("Figure 6", "PJoin state size vs punctuation inter-arrival",
              "20k tuples/stream, eager purge, punct inter-arrival 10/20/30");
  PrintTable("stream_s", horizon, 20,
             {{"punct10", &runs[0].state_vs_stream},
              {"punct20", &runs[1].state_vs_stream},
              {"punct30", &runs[2].state_vs_stream}});
  for (size_t i = 0; i < runs.size(); ++i) {
    PrintMetric("mean state @ inter-arrival " + std::to_string((i + 1) * 10),
                runs[i].mean_state, "tuples");
  }
  PrintShapeCheck(
      "state grows with punctuation inter-arrival (10 < 20 < 30)",
      runs[0].mean_state < runs[1].mean_state &&
          runs[1].mean_state < runs[2].mean_state);
  return 0;
}
