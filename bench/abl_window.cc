// Ablation A10 (§6 extension): what punctuations add on top of a sliding
// window. With a large window, expiry alone leaves lots of dead state;
// punctuations purge a key's tuples the moment its auction closes and
// propagate the closure downstream long before the window would.

#include "bench_util.h"
#include "gen/stream_generator.h"
#include "window/window_pjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

struct WindowRun {
  int64_t results = 0;
  int64_t puncts_out = 0;
  double mean_state = 0.0;
  int64_t max_state = 0;
  int64_t expired = 0;
  int64_t punct_purged = 0;
};

WindowRun Run(const GeneratedStreams& g, TimeMicros window,
              bool exploit_puncts) {
  WindowJoinOptions opts;
  opts.window_micros = window;
  opts.exploit_punctuations = exploit_puncts;
  WindowPJoin join(g.schema_a, g.schema_b, opts);
  WindowRun out;
  join.set_result_callback([&out](const Tuple&) { ++out.results; });
  join.set_punct_callback([&out](const Punctuation&) { ++out.puncts_out; });

  TimeSeries state;
  size_t ia = 0;
  size_t ib = 0;
  int64_t processed = 0;
  while (ia < g.a.size() || ib < g.b.size()) {
    int side;
    if (ia >= g.a.size()) {
      side = 1;
    } else if (ib >= g.b.size()) {
      side = 0;
    } else {
      side = g.a[ia].arrival() <= g.b[ib].arrival() ? 0 : 1;
    }
    const StreamElement& e = side == 0 ? g.a[ia++] : g.b[ib++];
    Status st = join.OnElement(side, e);
    PJOIN_DCHECK(st.ok());
    if (++processed % 200 == 0) {
      state.Record(e.arrival(), join.state_tuples());
    }
  }
  out.mean_state = state.MeanValue();
  out.max_state = state.MaxValue();
  out.expired = join.counters().Get("window_expired");
  out.punct_purged = join.counters().Get("punct_purged");
  return out;
}

}  // namespace

int main() {
  DomainSpec d;
  d.window_size = 20;
  StreamSpec spec;
  spec.num_tuples = 20000;
  spec.punct_mean_interarrival_tuples = 20;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 777);

  const TimeMicros kLargeWindow = 5 * kMicrosPerSecond;
  WindowRun window_only = Run(g, kLargeWindow, false);
  WindowRun window_plus_punct = Run(g, kLargeWindow, true);

  PrintHeader("Ablation A10", "sliding window with vs without punctuations",
              "20k tuples/stream, 5 s window, punct inter-arrival 20");
  PrintMetric("mean state, window only", window_only.mean_state, "tuples");
  PrintMetric("mean state, window + punctuations",
              window_plus_punct.mean_state, "tuples");
  PrintMetric("expired by window (window only)",
              static_cast<double>(window_only.expired));
  PrintMetric("purged early by punctuations",
              static_cast<double>(window_plus_punct.punct_purged));
  PrintMetric("punctuations propagated",
              static_cast<double>(window_plus_punct.puncts_out));
  PrintShapeCheck("same results either way",
                  window_only.results == window_plus_punct.results);
  PrintShapeCheck("punctuations shrink the windowed state",
                  window_plus_punct.mean_state < window_only.mean_state);
  PrintShapeCheck("window-only run propagates nothing",
                  window_only.puncts_out == 0);
  return 0;
}
