// Figure 13: state requirements for the Figure 12 configuration (A
// punct=10, B punct=20). Paper: eager purge minimizes memory; lazy purge
// trades "an insignificant increase in memory overhead" for output rate;
// XJoin retains everything.

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 10;
  cfg.punct_b = 20;
  GeneratedStreams g = cfg.Generate();

  JoinOptions xopts;
  EnableStateSampling(&xopts);
  XJoin xjoin(g.schema_a, g.schema_b, xopts);
  RunStats xs = RunExperiment(&xjoin, g);

  auto run_pjoin = [&](int64_t threshold) {
    JoinOptions opts;
    EnableStateSampling(&opts);
    opts.runtime.purge_threshold = threshold;
    PJoin join(g.schema_a, g.schema_b, opts);
    return RunExperiment(&join, g);
  };
  RunStats eager = run_pjoin(1);
  RunStats lazy = run_pjoin(100);

  PrintHeader("Figure 13", "asymmetric rates: state requirements",
              "30k tuples/stream, A punct=10, B punct=20; PJoin-1 vs "
              "PJoin-100 vs XJoin");
  PrintTable("stream_s", xs.stream_micros, 20,
             {{"pjoin1", &eager.state_vs_stream},
              {"pjoin100", &lazy.state_vs_stream},
              {"xjoin", &xs.state_vs_stream}});
  PrintMetric("pjoin-1 mean state", eager.mean_state, "tuples");
  PrintMetric("pjoin-100 mean state", lazy.mean_state, "tuples");
  PrintMetric("xjoin mean state", xs.mean_state, "tuples");
  PrintShapeCheck("eager <= lazy state", eager.mean_state <= lazy.mean_state);
  PrintShapeCheck(
      "lazy purge memory increase insignificant vs XJoin's growth",
      lazy.mean_state < xs.mean_state / 2);
  return 0;
}
