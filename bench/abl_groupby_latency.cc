// Ablation A7: the paper's *motivating* benefit (Fig 1) measured
// end-to-end — how early can a blocking group-by emit finished groups when
// PJoin propagates punctuations, vs. having to wait for end-of-stream?
//
// Metric: per finished auction item, the stream time between the item's
// close (its Bid punctuation) and the group-by emitting the item's total.
// Without propagation every result waits for end-of-stream.

#include <unordered_map>

#include "bench_util.h"
#include "gen/auction.h"
#include "join/pjoin.h"
#include "ops/groupby.h"
#include "ops/pipeline.h"
#include "ops/sink.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

struct LatencyRun {
  Histogram latency_ms;
  int64_t emitted_before_eos = 0;
  int64_t emitted_total = 0;
};

LatencyRun Run(const AuctionStreams& streams, bool propagate,
               TimeMicros eos_time,
               const std::unordered_map<int64_t, TimeMicros>& close_time) {
  JoinOptions jopts;
  jopts.runtime.purge_threshold = 1;
  jopts.runtime.propagate_count_threshold = propagate ? 2 : 0;
  jopts.propagate_on_finish = propagate;
  PJoin join(streams.open_schema, streams.bid_schema, jopts);
  GroupBy groupby(join.output_schema(), 0, {{AggKind::kCount, 0, "n"}},
                  /*group_aliases=*/{3});

  LatencyRun out;
  // GroupBy stamps punctuation-closed groups with the closing arrival time
  // and end-of-stream flushes with arrival 0, which distinguishes early
  // emissions from blocked ones.
  CallbackSink sink([&](const Tuple& t, TimeMicros arrival) {
    ++out.emitted_total;
    const bool at_eos = (arrival == 0);
    if (!at_eos) ++out.emitted_before_eos;
    auto it = close_time.find(t.field(0).AsInt64());
    if (it != close_time.end()) {
      const TimeMicros emit_time = at_eos ? eos_time : join.last_arrival();
      out.latency_ms.Add(
          std::max<int64_t>(0, (emit_time - it->second) / 1000));
    }
  });
  groupby.set_downstream(&sink);

  JoinPipeline pipeline(&join, &groupby);
  Status st = pipeline.Run(streams.open, streams.bid);
  PJOIN_DCHECK(st.ok());
  return out;
}

}  // namespace

int main() {
  AuctionSpec spec;
  spec.num_bids = 20000;
  spec.open_window = 20;
  spec.close_mean_interarrival_bids = 40;
  AuctionStreams streams = GenerateAuction(spec, 4);

  // Close time per item = arrival of its Bid punctuation.
  std::unordered_map<int64_t, TimeMicros> close_time;
  TimeMicros eos_time = 0;
  for (const StreamElement& e : streams.bid) {
    eos_time = std::max(eos_time, e.arrival());
    if (e.is_punctuation() && e.punctuation().pattern(0).IsConstant()) {
      close_time.emplace(e.punctuation().pattern(0).constant().AsInt64(),
                         e.arrival());
    }
  }

  LatencyRun with = Run(streams, true, eos_time, close_time);
  LatencyRun without = Run(streams, false, eos_time, close_time);

  PrintHeader("Ablation A7", "group-by result latency (Fig 1 motivation)",
              "20k bids, 20 open items, close every ~40 bids; latency = "
              "item close -> group result, in stream ms");
  PrintMetric("items emitted before EOS (with propagation)",
              static_cast<double>(with.emitted_before_eos));
  PrintMetric("items emitted before EOS (without)",
              static_cast<double>(without.emitted_before_eos));
  std::printf("  latency with propagation:    %s\n",
              with.latency_ms.ToString().c_str());
  std::printf("  latency without propagation: %s\n",
              without.latency_ms.ToString().c_str());
  PrintShapeCheck("propagation lets most groups finish before end-of-stream",
                  with.emitted_before_eos * 10 > with.emitted_total * 8);
  PrintShapeCheck("without propagation nothing finishes early",
                  without.emitted_before_eos == 0);
  PrintShapeCheck(
      "median group latency at least 10x lower with propagation",
      with.latency_ms.Percentile(0.5) * 10 <
          without.latency_ms.Percentile(0.5) + 1);
  PrintShapeCheck("same final answers",
                  with.emitted_total == without.emitted_total);
  return 0;
}
