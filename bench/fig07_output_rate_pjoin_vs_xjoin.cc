// Figure 7: cumulative output tuples against processing time, PJoin vs
// XJoin. Paper: "as time advances, PJoin maintains an almost steady output
// rate whereas the output rate of XJoin drops" (XJoin's growing state makes
// every probe more expensive).

#include "bench_util.h"
#include "join/pjoin.h"
#include "join/xjoin.h"

using namespace pjoin;
using namespace pjoin::bench;

namespace {

// Rate in the first vs second half of a cumulative-output curve.
std::pair<double, double> HalfRates(const TimeSeries& curve,
                                    TimeMicros horizon) {
  auto grid = curve.Resample(horizon, 2);
  const double first = static_cast<double>(grid[0].value);
  const double second = static_cast<double>(grid[1].value - grid[0].value);
  return {first, second};
}

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.num_tuples = 30000;
  cfg.punct_a = 40;
  cfg.punct_b = 40;
  GeneratedStreams g = cfg.Generate();

  // The figure contrasts the paper's operators, both with the linear bucket
  // scan; indexed probing would mask XJoin's probe-cost decay.
  JoinOptions xopts;
  xopts.indexed_probe = false;
  XJoin xjoin(g.schema_a, g.schema_b, xopts);
  RunStats xs = RunExperiment(&xjoin, g);
  JoinOptions popts;
  popts.runtime.purge_threshold = 1;
  popts.indexed_probe = false;
  PJoin pjoin(g.schema_a, g.schema_b, popts);
  RunStats ps = RunExperiment(&pjoin, g);

  const TimeMicros horizon = std::max(xs.wall_micros, ps.wall_micros);
  PrintHeader("Figure 7", "PJoin vs XJoin: tuple output rate",
              "30k tuples/stream, punct inter-arrival 40, eager purge; "
              "x-axis = processing wall time");
  PrintTable("wall_s", horizon, 20,
             {{"xjoin_out", &xs.output_vs_wall},
              {"pjoin_out", &ps.output_vs_wall}});
  auto [xj_first, xj_second] = HalfRates(xs.output_vs_wall, xs.wall_micros);
  auto [pj_first, pj_second] = HalfRates(ps.output_vs_wall, ps.wall_micros);
  PrintMetric("xjoin second-half/first-half output ratio",
              xj_second / std::max(1.0, xj_first));
  PrintMetric("pjoin second-half/first-half output ratio",
              pj_second / std::max(1.0, pj_first));
  PrintMetric("xjoin total wall time", xs.wall_micros / 1e6, "s");
  PrintMetric("pjoin total wall time", ps.wall_micros / 1e6, "s");
  PrintShapeCheck("XJoin output rate decays more than PJoin's",
                  xj_second / std::max(1.0, xj_first) <
                      pj_second / std::max(1.0, pj_first));
  PrintShapeCheck("PJoin finishes the stream no slower than XJoin",
                  ps.wall_micros <= xs.wall_micros);
  PrintShapeCheck("identical result sets", xs.results == ps.results);
  return 0;
}
