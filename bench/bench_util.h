// Shared harness for the figure-reproduction benches: experiment
// configuration mirroring the paper's §4 setup, instrumented runs, and
// aligned series printing.

#ifndef PJOIN_BENCH_BENCH_UTIL_H_
#define PJOIN_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "gen/stream_generator.h"
#include "join/join_base.h"

namespace pjoin {
namespace bench {

/// Experiment parameters shared by all figures. Defaults follow §4: tuple
/// inter-arrival Poisson(2 ms), many-to-many join, punctuation inter-arrival
/// in tuples/punctuation.
struct ExperimentConfig {
  int64_t num_tuples = 20000;
  double punct_a = 40.0;
  double punct_b = 40.0;
  int64_t window = 20;
  uint64_t seed = 2004;

  GeneratedStreams Generate() const;
};

/// Everything measured during one instrumented run.
struct RunStats {
  /// Cumulative output tuples against processing wall-clock time.
  TimeSeries output_vs_wall;
  /// Join-state size (tuples, memory+disk+purge buffer) against stream
  /// (virtual) time.
  TimeSeries state_vs_stream;
  /// Cumulative propagated punctuations against stream time.
  TimeSeries puncts_vs_stream;
  int64_t results = 0;
  int64_t puncts_out = 0;
  TimeMicros wall_micros = 0;
  TimeMicros stream_micros = 0;
  CounterSet counters;
  int64_t max_state = 0;
  double mean_state = 0.0;
};

/// Drives `join` over the generated streams, sampling every `sample_every`
/// elements. `on_sample` (optional) is invoked at each sampling point for
/// custom instrumentation (e.g. per-side state sizes).
RunStats RunExperiment(
    JoinOperator* join, const GeneratedStreams& streams,
    int64_t sample_every = 250,
    const std::function<void(const JoinOperator&)>& on_sample = nullptr,
    const std::function<void(const Punctuation&)>& on_punct = nullptr);

/// Enables state sampling on a JoinOptions (records every sample).
void EnableStateSampling(JoinOptions* options);

// ---- Output formatting ----

/// Prints the figure banner.
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& setup);

/// Prints several series resampled onto a common grid, one row per bucket:
/// first column the axis value, then one column per series.
struct Series {
  std::string name;
  const TimeSeries* data;
};
void PrintTable(const std::string& axis_name, TimeMicros horizon, int buckets,
                const std::vector<Series>& series);

/// Prints a one-line summary metric.
void PrintMetric(const std::string& name, double value,
                 const std::string& unit = "");

/// Prints the shape-check verdict line used by EXPERIMENTS.md.
void PrintShapeCheck(const std::string& expectation, bool holds);

}  // namespace bench
}  // namespace pjoin

#endif  // PJOIN_BENCH_BENCH_UTIL_H_
